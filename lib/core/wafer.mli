(** Wafer-scale yield engine: 2D die-population sweeps.

    The diagonal {!Postsilicon.run} study samples dies on the A-D line
    only, but the systematic Lgate map of §4.2 is a full 2D polynomial
    over the exposure field — population yield is a wafer-level
    quantity.  This module sweeps a configurable [nx x ny] grid of die
    positions over the chip (optionally replicated across several
    exposure fields of a wafer), runs the {!Postsilicon.simulate_die}
    detect-and-compensate kernel for a batch of dies at every grid
    point, and reduces each cell with streaming statistics
    ({!Pvtol_util.Stream_stats}: Welford moments, P-square quantiles,
    scenario counters) — a 10k-die sweep retains no per-die data.

    Determinism: each grid cell's RNG stream is derived from
    [(seed, field, ix, iy)] only, cells are reduced in row-major order,
    and the pool stores chunk results by index — so a sweep is
    bit-identical for every domain count and traversal schedule.  The
    per-die physics is the exact code path of {!Postsilicon.run}. *)

type config = {
  nx : int;               (** grid columns over the chip's x extent *)
  ny : int;               (** grid rows over the chip's y extent *)
  dies_per_cell : int;    (** dies simulated per grid cell per field *)
  fields : int;           (** exposure-field replicas (same systematic
                              map, independent random draws) *)
  seed : int;
  direction : Island.direction;  (** slicing variant being deployed *)
}

val default_config : config
(** 8x8 grid, 12 dies per cell, one field, seed 7, vertical slicing. *)

type cell = {
  ix : int;
  iy : int;
  x_frac : float;         (** die origin, fraction of the chip edge *)
  y_frac : float;
  dies : int;
  yield_uncompensated : float;
  yield_compensated : float;
  yield_chip_wide : float;
  mean_raised : float;
  scenario_counts : int array;   (** dies per detected scenario, 0..n *)
  raised_counts : int array;     (** dies per final raised level *)
  mean_power_islands_mw : float;
  mean_power_chip_wide_mw : float;
  delay : Pvtol_util.Stats.summary;  (** worst low-Vdd stage delay, ns *)
  delay_p50_ns : float;   (** P-square median estimate *)
  delay_p90_ns : float;   (** P-square 90th-percentile estimate *)
}

type sweep = {
  config : config;
  n_islands : int;
  clock_ns : float;
  cells : cell array;     (** row-major: [cells.(iy * nx + ix)] *)
  dies : int;             (** total dies simulated *)
  yield_uncompensated : float;
  yield_compensated : float;
  yield_chip_wide : float;
  mean_raised : float;
  scenario_counts : int array;
  mean_power_islands_mw : float;
  mean_power_chip_wide_mw : float;
  delay : Pvtol_util.Stats.summary;
}

val grid_frac : int -> int -> float
(** [grid_frac n i]: chip-edge fraction of grid index [i] of [n] — the
    endpoints-inclusive mapping [i / (n-1)] (0.5 for a 1-wide grid), so
    cell (0,0) sits exactly at the paper's corner position A. *)

val cell_position : config -> ix:int -> iy:int -> Pvtol_variation.Position.t
(** Die position of a grid cell ({!Pvtol_variation.Position.at_xy}). *)

val cell_seed : config -> field:int -> ix:int -> iy:int -> int
(** The RNG seed of one cell's die stream.  Exposed so tests can
    recompute any cell independently of the sweep. *)

val run :
  ?pool:Pvtol_util.Pool.t ->
  ?on_cell:(completed:int -> total:int -> unit) ->
  Flow.t -> Flow.variant -> config -> sweep
(** Run the sweep on [pool] (default: the shared pool), one pool chunk
    per grid cell.  Results are bit-identical for every pool size.
    [on_cell] fires after each grid cell completes, from whichever
    domain finished it, with a monotone completed count — exceptions it
    raises are swallowed.  [Invalid_argument] if the grid is empty or
    the variant's direction does not match the config. *)

val sweep :
  ?on_cell:(completed:int -> total:int -> unit) -> Flow.t -> config -> sweep
(** Like {!run}, but memoized on the flow's stage graph as the keyed
    stage [wafer[<nx>x<ny>-d<dies>-f<fields>-s<seed>-<dir>]] — traced
    and computed at most once per (flow, config), like every other
    stage.  [on_cell] only streams on the force that actually computes;
    a memoized hit returns at once with no progress to report. *)

(** {2 Variance-reduced sampling estimator}

    {!run} is a census: a fixed die budget at fixed grid positions.
    The estimator below instead samples die positions over the exposure
    field — the estimand is the {e continuous} wafer mean — with a
    choice of {!Pvtol_ssta.Smart_sampling.method_}:

    - [Mc]: i.i.d. uniform positions, unit weights (the baseline);
    - [Lhs]: stratified positions with Latin-hypercube sub-jitter, so
      position-driven variance is removed stratum by stratum;
    - [Is]: stratified positions plus a per-stratum importance-sampling
      mixture tilted toward the rare-scenario boundary, with exact
      balance-heuristic reweighting — the tail-event workhorse.

    Rounds are drawn until the designated metric's confidence interval
    half-width reaches the target (or the round budget runs out).  A
    zero half-width never satisfies the rule: for indicator metrics an
    all-constant sample is evidence of starvation, not certainty.
    Every stratum round is an independent RNG substream keyed by
    [(seed, round, stratum)], rounds are merged in stratum order, and
    the per-die kernel is engine-exact — so a report is bit-identical
    across [PVTOL_DOMAINS] and both [PVTOL_MC_ENGINE] values. *)

type ci_metric =
  | Ci_yield  (** uncompensated timing yield *)
  | Ci_rare   (** P(>= [s_rare] islands violating before compensation) *)

val ci_metric_name : ci_metric -> string
val ci_metric_of_string : string -> ci_metric option

type sampling_config = {
  s_method : Pvtol_ssta.Smart_sampling.method_;
  s_strata : int;          (** strata per axis; [s_strata^2] groups *)
  s_dies_per_round : int;  (** dies per stratum per round *)
  s_max_rounds : int;      (** stopping-rule safety budget *)
  s_ci_target : float;     (** stop when the CI half-width reaches this *)
  s_ci_metric : ci_metric; (** which metric the stopping rule watches *)
  s_rare : int;            (** rare scenario: >= this many islands *)
  s_confidence : float;    (** two-sided CI confidence, e.g. 0.95 *)
  s_seed : int;
  s_direction : Island.direction;
}

val default_sampling_config : sampling_config
(** mc, 4x4 strata, 16 dies/round, 64 rounds max, +-0.1% yield CI at
    95%, rare scenario 2, seed 7, vertical slicing. *)

type interval = {
  mid : float;  (** point estimate *)
  hw : float;   (** CI half-width; [infinity] until every stratum has
                    at least two dies *)
}

type sampling_group = {
  sg_ix : int;
  sg_iy : int;
  sg_dies : int;
  sg_components : int;     (** IS mixture components at this stratum *)
  sg_yield_uncompensated : float;
  sg_rare : float;
  sg_mean_weight : float;  (** ~1 when the reweighting is honest *)
  sg_effective_samples : float;
}

type sampling_report = {
  sr_config : sampling_config;
  sr_position : Pvtol_variation.Position.t option;
      (** [Some p] for a fixed-site {!estimate_at} run *)
  sr_clock_ns : float;
  sr_rounds : int;
  sr_converged : bool;     (** the stopping rule fired (vs budget) *)
  sr_dies : int;
  sr_estimate : float;     (** the designated metric's estimate *)
  sr_ci_halfwidth : float;
  sr_effective_samples : float;  (** Kish size, summed over strata *)
  sr_yield_uncompensated : interval;
  sr_yield_compensated : interval;
  sr_yield_chip_wide : interval;
  sr_rare : interval;
  sr_groups : sampling_group array;
}

val sampling_config_label : sampling_config -> string
(** The stage key, e.g. [is-4x4-d16-r64-ci0.001-yield-m2-c0.95-s7-vertical]. *)

type on_round = round:int -> max_rounds:int -> ci_halfwidth:float -> unit

val estimate : ?on_round:on_round -> Flow.t -> sampling_config -> sampling_report
(** Wafer-mean estimate, memoized on the flow's stage graph as the
    keyed stage [sampling[<label>]] — {!Compare} and {!Experiments}
    pick it up like any other stage.  [on_round] fires after every
    round with the current half-width (only on the force that actually
    computes). *)

val estimate_run :
  ?pool:Pvtol_util.Pool.t ->
  ?on_round:on_round ->
  Flow.t ->
  sampling_config ->
  sampling_report
(** {!estimate} without the stage-graph memoization, on an explicit
    pool — the determinism tests re-run the same config on pools of
    different sizes and compare reports bit for bit. *)

val estimate_at :
  ?pool:Pvtol_util.Pool.t ->
  ?on_round:on_round ->
  Flow.t ->
  position:Pvtol_variation.Position.t ->
  sampling_config ->
  sampling_report
(** Single-site estimate: every die sits at [position] (no position
    jitter — only the Lgate randomness varies).  The stratum grid
    degenerates into independent parallel substreams of the same
    position, so long brute-force runs still use the pool's full
    width.  Not memoized; this is the differential oracle's entry
    point, which wants explicit pools and fresh runs. *)

val pp_sampling : Format.formatter -> sampling_report -> unit

val sampling_to_json : sampling_report -> string
(** The report as a JSON document; the top level carries
    [effective_samples] and [ci_halfwidth] alongside the per-metric
    intervals and per-stratum groups. *)

(** {2 Rendering} *)

type metric =
  | Yield_uncompensated
  | Yield_compensated
  | Yield_chip_wide
  | Mean_raised
  | Delay_p90

val render_map : sweep -> metric -> string
(** ASCII heat map of a per-cell metric over the grid (lower-left =
    the slow corner A). *)

val pp : Format.formatter -> sweep -> unit
(** Wafer-level summary: yields, mean raised, power, delay spread and
    the scenario histogram. *)

val to_json : sweep -> string
(** The whole sweep as a JSON document (wafer aggregates plus one
    object per cell). *)
