test/test_netlist.ml: Alcotest Array Float List Netlist Printf Pvtol_netlist Pvtol_stdcell Pvtol_vex Stage
