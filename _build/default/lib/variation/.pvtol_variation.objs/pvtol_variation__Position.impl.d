lib/variation/position.ml: Printf
