(** Adder generators.

    The execute-stage ALUs and address units use a carry-select
    organisation (ripple blocks with precomputed carry-0/carry-1 sums),
    which is what performance-driven synthesis of a [+] operator
    typically produces at this size; the multiplier's final stage and
    small counters use plain ripple. *)

open Gen

val full_adder : t -> net -> net -> net -> net * net
(** [full_adder t a b cin] = (sum, cout). *)

val ripple : t -> ?cin:net -> bus -> bus -> bus * net
(** [ripple t a b] adds two equal-width buses; returns (sum, carry-out).
    Default carry-in 0. *)

val carry_select : t -> ?block:int -> ?cin:net -> bus -> bus -> bus * net
(** Carry-select adder with ripple blocks of [block] bits (default 8). *)

val kogge_stone : t -> ?cin:net -> bus -> bus -> bus * net
(** Kogge-Stone parallel-prefix adder: logarithmic depth, the structure
    performance-driven synthesis infers for critical [+] operators. *)

val incrementer : t -> bus -> bus
(** [a + 1], used by the fetch-stage PC. *)

val subtractor : t -> bus -> bus -> bus * net
(** [a - b]; carry-out is the NOT-borrow flag. *)
