(** Reproduction harness: one entry per table and figure of the paper's
    evaluation.  Every function renders the same rows/series the paper
    reports (see EXPERIMENTS.md for the side-by-side comparison).

    A [context] is simply a {!Flow.t} handle: the stage graph memoizes
    every intermediate (placement, STA, Monte Carlo per position, both
    slicing variants, power per configuration), so each exhibit forces
    only what it reads and the expensive work runs once per handle no
    matter how many exhibits are rendered. *)

type context = Flow.t

val make_context : ?config:Flow.config -> unit -> context
(** [Flow.prepare]: cheap, declares the stage graph only. *)

(** {2 Individual experiments} *)

val fig2_lgate_map : unit -> string
(** Fig. 2: systematic Lgate map over the 14x14 mm chip. *)

val table1_breakdown : Flow.t -> string
(** Table 1: area and power breakdown of the VEX design, plus the
    headline implementation results of §4.2 (fmax, area, total power,
    leakage share, critical-path composition). *)

val fig3_distributions : Flow.t -> string
(** Fig. 3: per-stage critical-path slack distributions at point A,
    with normal fits and the chi-square acceptance of §4.3. *)

val scenarios_summary : Flow.t -> string
(** §4.4: violation scenarios at points A-D and the 10% worst-case
    frequency-degradation figure. *)

val razor_sites : Flow.t -> string
(** §4.4: Razor sensing sites per stage at point A ("we had 12 signal
    paths becoming critical" for execute). *)

val fig4_islands : context -> string
(** Fig. 4: island geometry for both slicing directions. *)

val table2_level_shifters : context -> string
(** Table 2: level-shifter count, area share and power share at points
    A/B/C for both slicings, plus post-insertion degradation. *)

val fig5_total_power : context -> string
(** Fig. 5: normalized total power of chip-wide high Vdd vs the six
    island configurations, per violation scenario. *)

val fig6_leakage : context -> string
(** Fig. 6: normalized leakage power of the same configurations. *)

val energy_note : context -> string
(** §5 closing note: energy ratios once the VI designs' slowdown is
    accounted for. *)

val compensation_check : context -> string
(** Methodology validation (not a paper exhibit): Monte-Carlo re-run
    with islands raised, confirming each scenario is brought back
    within (3-sigma) nominal performance. *)

val grouping_ablation : context -> string
(** Ablation of the cell-grouping strategy (§3's argument + the
    "further cell grouping strategies" future work): placement-aware
    vertical/horizontal/quadrant slicing vs logic-based (functional
    unit) selection, compared on high-Vdd cell count, level-shifter
    demand and spatial fragmentation of the resulting power domains. *)

val clock_tree_note : context -> string
(** Clock-tree synthesis over the placed flops: buffer count, levels,
    wirelength, and the skew's impact on the nominal clock — the check
    that the flow's ideal-clock assumption is harmless. *)

val ssta_crosscheck : context -> string
(** Validation: the single-traversal analytic SSTA (Clark max, §2's
    PERT-like approach) against the Monte-Carlo engine, per stage and
    die position. *)

val alternatives_comparison : context -> string
(** §1's motivating comparison, quantified on the reproduced design:
    guard-banding, clock-skew retiming (ReCycle-style), chip-wide
    supply adaptation, adaptive body bias, and the paper's voltage
    islands — achieved frequency and power cost of each at the
    worst-case die position. *)

val routing_note : context -> string
(** Global routing over the placed design, before and after
    level-shifter insertion: routed wirelength vs the HPWL/Steiner
    estimate, congestion, and the timing impact of routed lengths —
    the check that the ECO insertion leaves the design routable. *)

val power_integrity : context -> string
(** IR-drop feasibility of the high-Vdd supply network for each
    grouping strategy's worst-case (3-islands-raised) domain — the
    measurable form of §4.5's "facilitate the synthesis of power supply
    networks" argument. *)

val workload_sensitivity : context -> string
(** The paper measures power under a single FIR benchmark; this exhibit
    re-derives the headline normalized comparison (1 island at point C
    vs chip-wide adaptation) under four more workloads with different
    unit mixes, showing how much the normalized savings depend on the
    benchmark choice. *)

val postsilicon_study : context -> string
(** Post-silicon compensation across a sampled chip population:
    per-die Razor detection of the violation scenario, island raising,
    and the resulting timing yield and power vs chip-wide adaptation
    (the deployment story of §1, evaluated end to end). *)

val wafer_study : context -> string
(** Wafer-scale extension of {!postsilicon_study}: the same
    detect-and-compensate loop swept over a 2D grid of die positions
    ({!Wafer}), rendered as wafer aggregates plus ASCII yield /
    compensation heat maps.  The diagonal study is the x=y line of
    these maps. *)

val all : context -> string
(** Every exhibit in paper order (warms the Monte-Carlo stage for all
    die positions on the domain pool first). *)
