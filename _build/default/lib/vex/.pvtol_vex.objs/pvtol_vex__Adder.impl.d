lib/vex/adder.ml: Array Gen
