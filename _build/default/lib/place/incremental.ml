open Pvtol_netlist
module Geom = Pvtol_util.Geom

type stats = {
  inserted : int;
  moved : int;
  mean_displacement : float;
  max_displacement : float;
}

(* Free-interval bookkeeping per row.  Existing cells never move (ECO
   placement): each new cell drops into the nearest free gap that fits
   it — the gaps being largely the quantum whitespace the legalizer
   reserved (see Legalize.run's [padding]). *)
module Gaps = struct
  let build (p : Placement.t) n_placed =
    let fp = p.Placement.floorplan in
    let core = fp.Floorplan.core in
    let by_row = Array.make fp.Floorplan.n_rows [] in
    for i = 0 to n_placed - 1 do
      let c = p.Placement.netlist.Netlist.cells.(i) in
      let w = Placement.cell_width c fp in
      let r = Floorplan.row_of_y fp p.Placement.ys.(i) in
      let left = p.Placement.xs.(i) -. (w /. 2.0) in
      by_row.(r) <- (left, left +. w) :: by_row.(r)
    done;
    Array.map
      (fun occupied ->
        let sorted = List.sort compare occupied in
        let rec gaps cursor = function
          | [] ->
            if core.Geom.urx -. cursor > 1e-9 then [ (cursor, core.Geom.urx) ]
            else []
          | (l, r) :: rest ->
            let tail = gaps (Float.max cursor r) rest in
            if l -. cursor > 1e-9 then (cursor, l) :: tail else tail
        in
        gaps core.Geom.llx sorted)
      by_row

  (* Best position for a width-[w] cell near [x] within a gap list;
     returns (cost, position) of the closest fit. *)
  let best_in_row gaps ~x ~w =
    List.fold_left
      (fun acc (l, r) ->
        if r -. l >= w then begin
          let pos = Float.max (l +. (w /. 2.0)) (Float.min (r -. (w /. 2.0)) x) in
          let cost = Float.abs (pos -. x) in
          match acc with
          | Some (c, _) when c <= cost -> acc
          | _ -> Some (cost, pos)
        end
        else acc)
      None gaps

  let take gaps_row ~pos ~w =
    let left = pos -. (w /. 2.0) and right = pos +. (w /. 2.0) in
    List.concat_map
      (fun (l, r) ->
        if right <= l || left >= r then [ (l, r) ]
        else
          (if left -. l > 1e-9 then [ (l, left) ] else [])
          @ if r -. right > 1e-9 then [ (right, r) ] else [])
      gaps_row
end

let insert (old_p : Placement.t) (nl : Netlist.t) ~desired =
  let n_old = Netlist.cell_count old_p.Placement.netlist in
  let n_new = Netlist.cell_count nl in
  assert (n_new >= n_old);
  let fp = old_p.Placement.floorplan in
  let p =
    {
      Placement.netlist = nl;
      floorplan = fp;
      xs = Array.make n_new 0.0;
      ys = Array.make n_new 0.0;
    }
  in
  Array.blit old_p.Placement.xs 0 p.Placement.xs 0 n_old;
  Array.blit old_p.Placement.ys 0 p.Placement.ys 0 n_old;
  let gaps = Gaps.build old_p n_old in
  let n_rows = fp.Floorplan.n_rows in
  let total = ref 0.0 and worst = ref 0.0 in
  for i = n_old to n_new - 1 do
    let target = desired i in
    let w = Placement.cell_width nl.Netlist.cells.(i) fp in
    let prefer = Floorplan.row_of_y fp target.Geom.y in
    (* Branch-and-bound over rows outward from the preferred one: a row
       [ring] rows away costs at least [ring * row_height], so the
       search stops once that lower bound exceeds the best found. *)
    let found = ref None in
    let ring = ref 0 in
    let continue_search () =
      !ring < n_rows
      &&
      match !found with
      | None -> true
      | Some (c, _, _) -> float_of_int !ring *. fp.Floorplan.row_height < c
    in
    while continue_search () do
      let try_row r =
        if r >= 0 && r < n_rows then
          match Gaps.best_in_row gaps.(r) ~x:target.Geom.x ~w with
          | Some (cost, pos) ->
            let dy =
              Float.abs
                (Floorplan.row_y fp r +. (fp.Floorplan.row_height /. 2.0)
                -. target.Geom.y)
            in
            let cost = cost +. dy in
            (match !found with
            | Some (c, _, _) when c <= cost -> ()
            | _ -> found := Some (cost, r, pos))
          | None -> ()
      in
      if !ring = 0 then try_row prefer
      else begin
        try_row (prefer - !ring);
        try_row (prefer + !ring)
      end;
      incr ring
    done;
    match !found with
    | None -> failwith "Incremental.insert: no free space in any row"
    | Some (cost, r, pos) ->
      gaps.(r) <- Gaps.take gaps.(r) ~pos ~w;
      p.Placement.xs.(i) <- pos;
      p.Placement.ys.(i) <- Floorplan.row_y fp r +. (fp.Floorplan.row_height /. 2.0);
      total := !total +. cost;
      if cost > !worst then worst := cost
  done;
  let inserted = n_new - n_old in
  ( p,
    {
      inserted;
      moved = 0;
      mean_displacement =
        (if inserted = 0 then 0.0 else !total /. float_of_int inserted);
      max_displacement = !worst;
    } )
