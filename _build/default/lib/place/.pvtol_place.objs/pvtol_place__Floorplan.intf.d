lib/place/floorplan.mli: Format Pvtol_util
