lib/power/power.ml: Array Format Gatesim Hashtbl List Netlist Option Pvtol_netlist Pvtol_stdcell Stage
