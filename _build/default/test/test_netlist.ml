(* Tests for Pvtol_netlist: builder, invariants, surgery helpers. *)

open Pvtol_netlist
module Builder = Netlist.Builder
module Kind = Pvtol_stdcell.Kind
module Cell = Pvtol_stdcell.Cell

let lib = Cell.default_library
let stage = Stage.Execute

let test_builder_basics () =
  let b = Builder.create ~design_name:"t" lib in
  let a = Builder.input b "a" in
  let c = Builder.input b "c" in
  let n1 = Builder.add b ~stage ~unit_name:"u" Kind.Nand2 [| a; c |] in
  let n2 = Builder.add b ~stage ~unit_name:"u" Kind.Inv [| n1 |] in
  Builder.output b n2 "out";
  let nl = Builder.freeze b in
  Alcotest.(check int) "cells" 2 (Netlist.cell_count nl);
  Alcotest.(check int) "nets" 4 (Netlist.net_count nl);
  Alcotest.(check int) "inputs" 2 (Array.length nl.Netlist.inputs);
  Alcotest.(check int) "outputs" 1 (Array.length nl.Netlist.outputs);
  (match Netlist.check nl with
  | Ok () -> ()
  | Error es -> Alcotest.failf "check failed: %s" (List.hd es));
  Alcotest.(check bool) "find output net" true
    (Netlist.find_net nl "out" <> None)

let test_arity_error () =
  let b = Builder.create lib in
  let a = Builder.input b "a" in
  try
    ignore (Builder.add b ~stage ~unit_name:"u" Kind.Nand2 [| a |]);
    Alcotest.fail "arity error expected"
  with Invalid_argument _ -> ()

let test_unknown_net_error () =
  let b = Builder.create lib in
  try
    ignore (Builder.add b ~stage ~unit_name:"u" Kind.Inv [| 42 |]);
    Alcotest.fail "undeclared net error expected"
  with Invalid_argument _ -> ()

let test_cycle_detection () =
  let b = Builder.create lib in
  let stub = Builder.placeholder b "loop" in
  let n1 = Builder.add b ~stage ~unit_name:"u" Kind.Inv [| stub |] in
  let n2 = Builder.add b ~stage ~unit_name:"u" Kind.Inv [| n1 |] in
  (* Close a purely combinational loop. *)
  (match Builder.driver_of b n1 with
  | Some cell -> Builder.rewire b ~cell ~pin:0 n2
  | None -> Alcotest.fail "driver expected");
  try
    ignore (Builder.freeze b);
    Alcotest.fail "combinational cycle should be rejected"
  with Failure _ -> ()

let test_dff_loop_allowed () =
  (* The same loop through a flop is fine. *)
  let b = Builder.create lib in
  let stub = Builder.placeholder b "d" in
  let q = Builder.add b ~stage ~unit_name:"u" Kind.Dff [| stub |] in
  let inv = Builder.add b ~stage ~unit_name:"u" Kind.Inv [| q |] in
  (match Builder.driver_of b q with
  | Some cell -> Builder.rewire b ~cell ~pin:0 inv
  | None -> Alcotest.fail "driver expected");
  let nl = Builder.freeze b in
  match Netlist.check nl with
  | Ok () -> ()
  | Error es -> Alcotest.failf "check failed: %s" (List.hd es)

let test_undriven_net_rejected () =
  let b = Builder.create lib in
  let stub = Builder.placeholder b "dangling" in
  ignore (Builder.add b ~stage ~unit_name:"u" Kind.Inv [| stub |]);
  try
    ignore (Builder.freeze b);
    Alcotest.fail "undriven net should be rejected"
  with Failure _ -> ()

let test_merge () =
  let b = Builder.create lib in
  let stub = Builder.placeholder b "later" in
  let consumer = Builder.add b ~stage ~unit_name:"u" Kind.Inv [| stub |] in
  Builder.output b consumer "out";
  let real = Builder.input b "real" in
  Builder.merge b ~placeholder:stub real;
  let nl = Builder.freeze b in
  (match Netlist.check nl with
  | Ok () -> ()
  | Error es -> Alcotest.failf "check failed: %s" (List.hd es));
  (* The inverter's fanin must now be the real input net. *)
  let inv = nl.Netlist.cells.(0) in
  Alcotest.(check int) "rewired to real net" real inv.Netlist.fanins.(0)

let small_design () =
  let v = Pvtol_vex.Vex_core.build Pvtol_vex.Vex_core.small_config in
  v.Pvtol_vex.Vex_core.netlist

let test_small_core_invariants () =
  let nl = small_design () in
  match Netlist.check nl with
  | Ok () -> ()
  | Error es ->
    Alcotest.failf "%d invariant errors, first: %s" (List.length es) (List.hd es)

let test_stats_by_stage () =
  let nl = small_design () in
  let stats = Netlist.stats_by_stage nl in
  let total_area =
    List.fold_left (fun acc (_, _, a) -> acc +. a) 0.0 stats
  in
  Alcotest.(check bool) "stage areas sum to total" true
    (Float.abs (total_area -. Netlist.area nl) < 1e-6);
  (* The synthesized register file dominates, as in the paper. *)
  let rf = Netlist.area_of_stage nl Stage.Reg_file in
  List.iter
    (fun s ->
      if not (Stage.equal s Stage.Reg_file) then
        Alcotest.(check bool)
          (Printf.sprintf "RF bigger than %s" (Stage.name s))
          true
          (rf > Netlist.area_of_stage nl s))
    Stage.all

let test_flops_and_fanout () =
  let nl = small_design () in
  let flops = Netlist.flops nl in
  Alcotest.(check bool) "has flops" true (Array.length flops > 100);
  Array.iter
    (fun (c : Netlist.cell) ->
      Alcotest.(check bool) "flop is sequential" false (Netlist.is_comb c))
    flops;
  (* fanout_cells is consistent with the net's sink list. *)
  let c = nl.Netlist.cells.(0) in
  let fo = Netlist.fanout_cells nl c in
  Alcotest.(check int) "fanout count matches sinks"
    (Array.length nl.Netlist.nets.(c.Netlist.fanout).Netlist.sinks)
    (List.length fo)

let test_remap_cells () =
  let nl = small_design () in
  let resized =
    Netlist.remap_cells nl (fun c ->
        Cell.find lib c.Netlist.cell.Cell.kind Cell.X0)
  in
  Alcotest.(check bool) "area shrank" true (Netlist.area resized < Netlist.area nl);
  (match Netlist.check resized with
  | Ok () -> ()
  | Error es -> Alcotest.failf "check failed: %s" (List.hd es));
  try
    ignore
      (Netlist.remap_cells nl (fun _ -> Cell.find lib Kind.Inv Cell.X1));
    Alcotest.fail "kind change should be rejected"
  with Invalid_argument _ -> ()

let test_stage_names () =
  List.iter
    (fun s ->
      match Stage.of_name (Stage.name s) with
      | Some s' -> Alcotest.(check bool) "stage roundtrip" true (Stage.equal s s')
      | None -> Alcotest.failf "stage %s does not parse" (Stage.name s))
    Stage.all

let suite =
  ( "netlist",
    [
      Alcotest.test_case "builder basics" `Quick test_builder_basics;
      Alcotest.test_case "arity error" `Quick test_arity_error;
      Alcotest.test_case "unknown net error" `Quick test_unknown_net_error;
      Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
      Alcotest.test_case "dff loop allowed" `Quick test_dff_loop_allowed;
      Alcotest.test_case "undriven net rejected" `Quick test_undriven_net_rejected;
      Alcotest.test_case "merge placeholder" `Quick test_merge;
      Alcotest.test_case "small core invariants" `Quick test_small_core_invariants;
      Alcotest.test_case "stats by stage" `Quick test_stats_by_stage;
      Alcotest.test_case "flops and fanout" `Quick test_flops_and_fanout;
      Alcotest.test_case "remap cells" `Quick test_remap_cells;
      Alcotest.test_case "stage names" `Quick test_stage_names;
    ] )
