open Pvtol_netlist
module Geom = Pvtol_util.Geom

type t = {
  netlist : Netlist.t;
  floorplan : Floorplan.t;
  xs : float array;
  ys : float array;
}

let create netlist floorplan =
  let n = Netlist.cell_count netlist in
  let c = Geom.center floorplan.Floorplan.core in
  {
    netlist;
    floorplan;
    xs = Array.make n c.Geom.x;
    ys = Array.make n c.Geom.y;
  }

let cell_width (c : Netlist.cell) (fp : Floorplan.t) =
  c.Netlist.cell.Pvtol_stdcell.Cell.area /. fp.Floorplan.row_height

let pos t cid = Geom.point t.xs.(cid) t.ys.(cid)

let net_bbox t nid =
  let net = t.netlist.Netlist.nets.(nid) in
  let pts = ref [] in
  (match net.Netlist.driver with
  | Some d -> pts := (t.xs.(d), t.ys.(d)) :: !pts
  | None -> ());
  Array.iter (fun (cid, _) -> pts := (t.xs.(cid), t.ys.(cid)) :: !pts) net.Netlist.sinks;
  match !pts with
  | [] -> None
  | (x0, y0) :: rest ->
    let llx = ref x0 and lly = ref y0 and urx = ref x0 and ury = ref y0 in
    List.iter
      (fun (x, y) ->
        if x < !llx then llx := x;
        if x > !urx then urx := x;
        if y < !lly then lly := y;
        if y > !ury then ury := y)
      rest;
    Some (Geom.rect ~llx:!llx ~lly:!lly ~urx:!urx ~ury:!ury)

let hpwl t nid =
  match net_bbox t nid with
  | None -> 0.0
  | Some r -> Geom.width r +. Geom.height r

let wire_length t nid =
  let fanout = Array.length t.netlist.Netlist.nets.(nid).Netlist.sinks in
  if fanout <= 1 then hpwl t nid
  else hpwl t nid *. (1.0 +. (0.35 *. (sqrt (float_of_int fanout) -. 1.0)))

let total_hpwl t =
  let acc = ref 0.0 in
  Array.iter (fun (n : Netlist.net) -> acc := !acc +. hpwl t n.Netlist.net_id) t.netlist.Netlist.nets;
  !acc

let copy t = { t with xs = Array.copy t.xs; ys = Array.copy t.ys }
