(* Benchmark / reproduction harness.

   Usage:
     bench/main.exe                 -- every table & figure, then kernels
     bench/main.exe <exhibit>        -- one of: fig2 table1 fig3 scenarios
                                        razor fig4 table2 fig5 fig6 energy
                                        validate ablation clocktree crosscheck
                                        alternatives powergrid workloads
                                        postsilicon
     bench/main.exe kernels         -- Bechamel micro-benchmarks only
     bench/main.exe --quick ...     -- scaled-down design (fast smoke run)

   One Bechamel Test.make per table/figure kernel: the measured loop is
   the computational core that regenerates that exhibit (field eval for
   Fig. 2, an STA pass for Table 1's timing, a Monte-Carlo sample for
   Fig. 3 / §4.4, a corner compensation check for Fig. 4, crossing
   analysis for Table 2, and a power pass for Figs. 5-6). *)

module Experiments = Pvtol_core.Experiments
module Flow = Pvtol_core.Flow
module Island = Pvtol_core.Island
module Slicing = Pvtol_core.Slicing
module Level_shifter = Pvtol_core.Level_shifter
module Sta = Pvtol_timing.Sta
module Sampler = Pvtol_variation.Sampler
module Field = Pvtol_variation.Field
module Position = Pvtol_variation.Position
module Power = Pvtol_power.Power
module Gatesim = Pvtol_power.Gatesim
module Srng = Pvtol_util.Srng

let ctx = ref None

let context ~quick () =
  match !ctx with
  | Some c -> c
  | None ->
    let config = if quick then Flow.quick_config else Flow.default_config in
    Printf.printf "[preparing design flow%s...]\n%!" (if quick then " (quick)" else "");
    let c = Experiments.make_context ~config () in
    ctx := Some c;
    c

(* ------------------------------------------------------------------ *)
(* Bechamel kernels                                                     *)

let kernels ~quick () =
  let open Bechamel in
  let open Toolkit in
  let c = context ~quick () in
  let t = c.Experiments.flow in
  let sta = t.Flow.sta in
  let base = Sta.nominal_delays sta in
  let sampler = t.Flow.sampler in
  let placement = t.Flow.placement in
  let systematic = Sampler.systematic_lgates sampler placement Position.point_a in
  let n = Array.length base in
  let lgates = Array.make n 0.0 in
  let delays = Array.make n 0.0 in
  let rng = Srng.create 99 in
  let low =
    t.Flow.netlist.Pvtol_netlist.Netlist.lib.Pvtol_stdcell.Cell.process
      .Pvtol_stdcell.Process.vdd_low
  in
  let field = Field.default in
  let tests =
    [
      Test.make ~name:"fig2/field-eval-4096"
        (Staged.stage (fun () ->
             let acc = ref 0.0 in
             for i = 0 to 63 do
               for j = 0 to 63 do
                 acc :=
                   !acc
                   +. Field.systematic_nm field
                        ~x_mm:(float_of_int i /. 4.0)
                        ~y_mm:(float_of_int j /. 4.0)
               done
             done;
             ignore !acc));
      Test.make ~name:"table1/sta-pass"
        (Staged.stage (fun () -> ignore (Sta.analyze sta ~delays:base)));
      Test.make ~name:"fig3/mc-sample"
        (Staged.stage (fun () ->
             Sampler.sample_lgates sampler ~systematic rng lgates;
             Sampler.scale_delays sampler ~base ~lgates ~vdd:(fun _ -> low)
               ~out:delays;
             ignore (Sta.analyze sta ~delays)));
      Test.make ~name:"fig4/corner-check"
        (Staged.stage (fun () ->
             for i = 0 to n - 1 do
               delays.(i) <-
                 base.(i)
                 *. Slicing.corner_scale ~sampler ~systematic ~corner_kappa:0.35
                      ~vdd:(fun _ -> low)
                      i
             done;
             ignore (Sta.analyze sta ~delays)));
      Test.make ~name:"table2/crossing-analysis"
        (Staged.stage (fun () ->
             ignore
               (Level_shifter.count_crossings
                  c.Experiments.vertical.Flow.slicing.Slicing.partition
                  placement t.Flow.netlist)));
      Test.make ~name:"fig5-6/power-pass"
        (Staged.stage (fun () ->
             ignore
               (Power.analyze
                  ~vdd:(fun _ -> low)
                  ~activity:t.Flow.activity
                  ~wire_length:(fun nid ->
                    Pvtol_place.Placement.wire_length placement nid)
                  ~clock_ns:t.Flow.clock t.Flow.netlist)));
      Test.make ~name:"gatesim/cycle"
        (Staged.stage (fun () ->
             ignore
               (Gatesim.run ~cycles:1 t.Flow.netlist
                  (Gatesim.random_stimulus ~seed:5))));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  let instances = [ Instance.monotonic_clock ] in
  Printf.printf "\nKernel micro-benchmarks (Bechamel):\n%!";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some (est :: _) -> Printf.printf "  %-28s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "  %-28s (no estimate)\n%!" name)
        results)
    tests

(* ------------------------------------------------------------------ *)

let exhibits =
  [
    ("fig2", fun _c -> Experiments.fig2_lgate_map ());
    ("table1", fun c -> Experiments.table1_breakdown c.Experiments.flow);
    ("fig3", fun c -> Experiments.fig3_distributions c.Experiments.flow);
    ("scenarios", fun c -> Experiments.scenarios_summary c.Experiments.flow);
    ("razor", fun c -> Experiments.razor_sites c.Experiments.flow);
    ("fig4", Experiments.fig4_islands);
    ("table2", Experiments.table2_level_shifters);
    ("fig5", Experiments.fig5_total_power);
    ("fig6", Experiments.fig6_leakage);
    ("energy", Experiments.energy_note);
    ("validate", Experiments.compensation_check);
    ("ablation", Experiments.grouping_ablation);
    ("alternatives", Experiments.alternatives_comparison);
    ("crosscheck", Experiments.ssta_crosscheck);
    ("clocktree", Experiments.clock_tree_note);
    ("routing", Experiments.routing_note);
    ("powergrid", Experiments.power_integrity);
    ("workloads", Experiments.workload_sensitivity);
    ("postsilicon", Experiments.postsilicon_study);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let args = List.filter (fun a -> a <> "--quick") args in
  match args with
  | [] ->
    let c = context ~quick () in
    print_string (Experiments.all c);
    kernels ~quick ()
  | [ "kernels" ] -> kernels ~quick ()
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name exhibits with
        | Some f ->
          let c = context ~quick () in
          print_string (f c);
          print_newline ()
        | None ->
          Printf.eprintf
            "unknown exhibit %S (try: %s, kernels)\n" name
            (String.concat ", " (List.map fst exhibits));
          exit 1)
      names
