(** Static timing analysis.

    A {!t} is built once per (netlist, placement) pair: it captures the
    levelized evaluation order, per-cell nominal delays (intrinsic +
    load-dependent, with the load from placed wire capacitance and sink
    pin capacitances) and per-pin wire delays.  Each analysis run then
    only needs a per-cell delay array — which is exactly how the
    paper's flow works (SDF delays rewritten per variation sample /
    voltage assignment, then re-imported into the timing engine).

    Conventions: time in ns; flip-flop launch adds clk-to-q, capture
    adds setup; wire delays are not subject to variation or supply
    scaling (paper §4.1 ignores wire variation). *)

open Pvtol_netlist

type t

val build :
  Netlist.t ->
  wire_length:(Netlist.net_id -> float) ->
  capture:(Netlist.cell -> Stage.t option) ->
  t
(** [wire_length] estimates each net's routed length in um (HPWL after
    placement, a fanout-based wireload model before). *)

val of_placement :
  Pvtol_place.Placement.t -> capture:(Netlist.cell -> Stage.t option) -> t
(** Wire lengths from placed HPWL. *)

val wireload_model : Netlist.t -> Netlist.net_id -> float
(** Pre-placement fanout-based wireload estimate. *)

val netlist : t -> Netlist.t

(** {2 Structure accessors (for analyses layered on the same graph,
    e.g. the analytic SSTA)} *)

val comb_order : t -> Netlist.cell_id array
(** Topological order of the combinational cells (fresh copy). *)

val flop_ids : t -> Netlist.cell_id array
(** Sequential cells in id order (fresh copy). *)

val pin_wire_delay : t -> Netlist.cell_id -> int -> float
(** Wire delay charged at a cell's input pin. *)

val capture_stage_of : t -> Netlist.cell_id -> Stage.t option

(** {2 Delay vectors} *)

val nominal_delays : t -> float array
(** Fresh copy of the per-cell nominal delays (index = cell id). *)

val scaled_delays : t -> scale:(Netlist.cell_id -> float) -> float array
(** Nominal delays multiplied by a per-cell factor (process variation
    and/or supply assignment). *)

(** {2 Analysis} *)

type result = {
  arrival : float array;      (** per net: output arrival time *)
  endpoint_delay : float array;
      (** per cell: for sequential cells, data arrival + setup at the D
          pin; 0 elsewhere *)
  worst : float;              (** worst endpoint path delay, ns *)
  worst_endpoint : Netlist.cell_id;  (** -1 if the design has no endpoint *)
  stage_worst : (Stage.t * float * Netlist.cell_id) list;
      (** per capture stage: worst endpoint delay and its flop *)
}

val analyze : ?skew:(Netlist.cell_id -> float) -> t -> delays:float array -> result
(** [skew] gives each flop's clock-arrival offset (from clock-tree
    synthesis or useful-skew assignment): a launch edge arriving late
    delays the data launch; a capture edge arriving late relaxes the
    endpoint by the same amount.  Default: ideal clock (zero skew). *)

(** {2 Allocation-free analysis}

    {!analyze} allocates a fresh arrival / endpoint-delay pair per call,
    which dominates the cost of tight Monte-Carlo loops.  A {!workspace}
    preallocates all scratch once (typically one per worker domain) and
    {!analyze_into} reuses it: the inner loop performs no per-sample
    heap allocation of the arrival/endpoint arrays and produces floats
    bit-identical to {!analyze}. *)

type workspace
(** Mutable scratch sized for one {!t}; do not share across domains. *)

val workspace : t -> workspace

val analyze_into :
  ?skew:(Netlist.cell_id -> float) -> t -> workspace -> delays:float array -> unit
(** Same semantics as {!analyze}, with results left in the workspace
    and read through the [ws_*] accessors.  Each call overwrites the
    previous one's results. *)

val ws_worst : workspace -> float
val ws_worst_endpoint : workspace -> Netlist.cell_id
val ws_endpoint_delay : workspace -> Netlist.cell_id -> float
val ws_stage_delay : workspace -> Stage.t -> float option

(** {2 Batched structure-of-arrays analysis}

    The batched Monte-Carlo engine propagates a block of samples per
    graph edge: every cell/net owns one contiguous row of [stride]
    lanes, lane [k] of every row belonging to sample [k].  Within a
    lane the arithmetic is exactly {!analyze_into} on that lane's delay
    column — same op order, same accumulator init, same [>] reductions
    — so each lane's results are bit-identical to a scalar analysis of
    the same per-cell delays. *)

type batch_workspace
(** Scratch for one block of lanes; do not share across domains. *)

val batch_workspace : ?lanes:int -> t -> batch_workspace
(** [batch_workspace ~lanes t] preallocates rows of [lanes] (default
    32, the Monte-Carlo chunk size) samples per cell and net. *)

val batch_stride : batch_workspace -> int
(** The row stride (the [lanes] capacity it was built with). *)

val batch_delays : batch_workspace -> float array
(** The cell-major delay block the caller fills before
    {!analyze_batch_into}: cell [i]'s delay for lane [k] at index
    [i * stride + k] — the layout {!Pvtol_variation.Sampler.scale_delays_batch}
    writes. *)

val analyze_batch_into :
  ?skew:(Netlist.cell_id -> float) -> t -> batch_workspace -> lanes:int -> unit
(** Analyze the first [lanes] columns of {!batch_delays} in one forward
    pass ([1 <= lanes <= stride]).  Results are read per lane through
    the [bw_*] accessors. *)

val bw_worst : batch_workspace -> int -> float
val bw_worst_endpoint : batch_workspace -> int -> Netlist.cell_id

val bw_endpoint_delay : t -> batch_workspace -> Netlist.cell_id -> int -> float
(** [bw_endpoint_delay t bw cid k] — endpoint delay of flop [cid] in
    lane [k]; [0.] for non-sequential cells, like [ws_endpoint_delay]. *)

val bw_stage_delay : batch_workspace -> Stage.t -> int -> float option

(** {2 Incremental re-propagation}

    For call sequences whose delay vectors differ in few cells — the
    post-silicon settle loop re-times one Lgate realisation under a
    handful of island supply assignments — the workspace keeps the
    previous delays and arrivals, seeds a levelized worklist with the
    cells whose delay moved more than [bound], and re-propagates only
    their fan-out cones, pruning wherever a recomputed arrival is
    bitwise unchanged. *)

type inc_workspace
(** A {!workspace} plus the previous delay vector and the worklist
    buckets; do not share across domains. *)

val inc_workspace : t -> inc_workspace

val inc_ws : inc_workspace -> workspace
(** The underlying workspace holding the latest results — read it with
    the [ws_*] accessors. *)

val inc_invalidate : inc_workspace -> unit
(** Forget the cached arrivals; the next analysis runs a full pass.
    Call it if the arrivals were mutated externally or the [skew]
    function changed identity. *)

val analyze_incremental_into :
  ?skew:(Netlist.cell_id -> float) ->
  ?bound:float ->
  ?max_frac:float ->
  t ->
  inc_workspace ->
  delays:float array ->
  unit
(** Same observable semantics as {!analyze_into} into [inc_ws].  With
    [bound = 0.] (default) results are bit-identical to a full pass:
    every bitwise delay change re-propagates through the same per-cell
    arithmetic and the endpoint reduction is shared code.  A positive
    [bound] trades exactness for work: delay moves within [bound] are
    left un-propagated (stale arrivals persist until the cell is next
    touched), bounding the error by [bound] per level of stale logic.
    When the changed-cell set or the touched cone exceeds [max_frac]
    (default [0.25]) of the netlist, the pass falls back to one full
    forward pass — counted in [sta_full_fallbacks_total]; cells
    actually re-evaluated are counted in [sta_incremental_gates_total].
    The [skew] function must assign each flop the same offsets as the
    previous call on this workspace (use {!inc_invalidate} when it
    changes). *)

val required : t -> delays:float array -> clock:float -> float array
(** Backward pass: per-net required time under the clock constraint.
    Slack of a cell = required(fanout) - arrival(fanout). *)

val required_with :
  t ->
  delays:float array ->
  endpoint_required:(Stage.t option -> float) ->
  float array
(** Generalised backward pass: each flop's data-arrival constraint is
    given by its capture stage (synthesis path groups — used by the
    per-stage sizing budgets). *)

val stage_delay : result -> Stage.t -> float option
(** Worst path delay captured by a stage, if it has endpoints. *)

val endpoints_of_stage : t -> Stage.t -> Netlist.cell_id list
(** Flops captured by [stage], in id order (precomputed at build). *)

val stage_endpoint_ids : t -> Stage.t -> Netlist.cell_id array
(** Array form of {!endpoints_of_stage} (fresh copy); lets hot loops
    iterate endpoints without consing. *)
