type t = { mutable state : int64; mutable cached : float option }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed); cached = None }

let copy g = { state = g.state; cached = g.cached }

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let jump g n =
  if n < 0 then invalid_arg "Srng.jump: negative count";
  (* SplitMix64 state advances by a fixed gamma per draw, so skipping
     [n] draws is a single multiply-add.  Any cached Box-Muller half
     belongs to the undrawn part of the stream and is dropped. *)
  g.state <- Int64.add g.state (Int64.mul (Int64.of_int n) golden_gamma);
  g.cached <- None

let split g =
  let s = bits64 g in
  { state = mix s; cached = None }

let uniform g =
  (* 53 high bits scaled into [0,1). *)
  let b = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float b *. 0x1.0p-53

let float g x = uniform g *. x

let int g n =
  assert (n > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let b = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
    let v = b mod n in
    if b - v + (n - 1) < 0 then draw () else v
  in
  draw ()

let gaussian g =
  match g.cached with
  | Some z ->
    g.cached <- None;
    z
  | None ->
    let rec pair () =
      let u1 = uniform g in
      if u1 <= 1e-300 then pair ()
      else
        let u2 = uniform g in
        let r = sqrt (-2.0 *. log u1) in
        let theta = 2.0 *. Float.pi *. u2 in
        (r *. cos theta, r *. sin theta)
    in
    let z0, z1 = pair () in
    g.cached <- Some z1;
    z0

let gaussian_mu_sigma g ~mu ~sigma = mu +. (sigma *. gaussian g)

let fill_gaussians g out ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length out then
    invalid_arg "Srng.fill_gaussians: range out of bounds";
  let stop = pos + len in
  let i = ref pos in
  (* Leading cached half, if the previous draw left one. *)
  (if !i < stop then
     match g.cached with
     | Some z ->
       g.cached <- None;
       out.(!i) <- z;
       incr i
     | None -> ());
  (* Whole pairs through a local state copy: one loop, no per-call
     dispatch, no [float option] boxing.  The draw sequence — two
     [uniform]s per Box-Muller pair, [u1 = 0] rejection included — is
     exactly the one [gaussian] produces call by call. *)
  let s = ref g.state in
  let next_uniform () =
    s := Int64.add !s golden_gamma;
    Int64.to_float (Int64.shift_right_logical (mix !s) 11) *. 0x1.0p-53
  in
  (* Unsafe writes are sound: the range check above guarantees
     [pos + len <= length out] and [!i + 1 < stop <= pos + len]. *)
  while !i + 1 < stop do
    let u1 = next_uniform () in
    if u1 > 1e-300 then begin
      let u2 = next_uniform () in
      let r = sqrt (-2.0 *. log u1) in
      let theta = 2.0 *. Float.pi *. u2 in
      Array.unsafe_set out !i (r *. cos theta);
      Array.unsafe_set out (!i + 1) (r *. sin theta);
      i := !i + 2
    end
  done;
  g.state <- !s;
  (* Odd tail: draw one more pair and cache its second half, exactly
     like a trailing [gaussian] call. *)
  if !i < stop then out.(!i) <- gaussian g

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
