(** Writer and parser for a Liberty-style subset describing the cell
    library.  The commercial flow the paper relies on exchanges library
    data in Liberty format; this module provides the equivalent
    interchange point so a library can be dumped, edited and reloaded
    (e.g. to explore a different characterisation). *)

val to_string : Cell.library -> string
(** Serialize a library, including process parameters, wire models and
    every cell's characterisation. *)

val write_file : string -> Cell.library -> unit

exception Parse_error of string
(** Raised with a message including the offending line number. *)

val of_string : string -> Cell.library
(** Parse a library serialized by {!to_string} (whitespace-insensitive;
    comments introduced by [//] run to end of line). *)

val read_file : string -> Cell.library
