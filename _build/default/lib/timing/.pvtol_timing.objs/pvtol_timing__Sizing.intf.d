lib/timing/sizing.mli: Netlist Pvtol_netlist Stage
