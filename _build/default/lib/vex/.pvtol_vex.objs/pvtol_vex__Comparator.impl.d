lib/vex/comparator.ml: Adder Array Gen
