open Pvtol_netlist

let loops =
  [
    [ Stage.Execute ];
    [ Stage.Writeback; Stage.Decode; Stage.Execute ];
    [ Stage.Fetch; Stage.Decode ];
  ]

type result = {
  t_unretimed : float;
  t_retimed : float;
  gain : float;
  binding_loop : Stage.t list;
}

let bound ~delay_of =
  let delays stages = List.filter_map delay_of stages in
  let all =
    delays [ Stage.Fetch; Stage.Decode; Stage.Execute; Stage.Writeback ]
  in
  assert (all <> []);
  let t_unretimed = List.fold_left Float.max 0.0 all in
  let loop_avg stages =
    match delays stages with
    | [] -> None
    | ds ->
      Some (List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds))
  in
  let t_retimed, binding_loop =
    List.fold_left
      (fun (best, bl) l ->
        match loop_avg l with
        | Some avg when avg > best -> (avg, l)
        | _ -> (best, bl))
      (0.0, []) loops
  in
  {
    t_unretimed;
    t_retimed;
    gain = 1.0 -. (t_retimed /. t_unretimed);
    binding_loop;
  }
