(** Monte Carlo statistical static timing analysis (paper §4.3).

    Each sample draws a fresh per-gate Lgate realisation at the chosen
    die position, rescales the nominal delays and re-runs STA; the
    per-stage worst path delays are accumulated into distributions that
    are then fitted to normals with a chi-square acceptance test, as
    the paper does.  A per-cell supply assignment makes the same engine
    serve both the plain SSTA of Fig. 3 and the voltage-island
    compensation checks of §4.5. *)

open Pvtol_netlist

type config = {
  samples : int;
  seed : int;
}

val default_config : config
(** 400 samples, seed 2024. *)

type engine =
  | Golden
      (** The scalar reference engine: one full STA pass per sample.
          Bit-for-bit the historical results. *)
  | Batched
      (** Structure-of-arrays fast path: 32 samples propagated per
          graph walk with a polynomial delay-scale.  Identical gaussian
          draws; worst-slack values agree with [Golden] to ~1e-12
          relative (the documented {!Pvtol_variation.Sampler} fit
          bound). *)

val engine_of_env : unit -> engine
(** Engine selected by the [PVTOL_MC_ENGINE] environment variable:
    [golden] or [batched] (the default, also used — with a one-shot
    warning — for unrecognised values). *)

val substream_seed : int -> int list -> int
(** [substream_seed seed keys] folds the boost-style hash combine over
    [keys] to derive a deterministic, non-negative RNG seed for one
    substream of a larger experiment (one wafer grid cell, one sampling
    round at one stratum, ...).  The same root seed and key path always
    yield the same substream regardless of domain count or visit order
    — the seeding discipline behind every bit-identical parallel sweep
    in the library. *)

type stage_stats = {
  stage : Stage.t;
  samples : float array;        (** per-sample worst path delay, ns *)
  summary : Pvtol_util.Stats.summary;
  fit : Pvtol_util.Fit.normal;
  gof : Pvtol_util.Fit.gof;
}

type result = {
  position : Pvtol_variation.Position.t;
  stages : stage_stats list;    (** timing stages with endpoints *)
  worst_samples : float array;  (** global critical-path delay samples *)
  endpoint_critical_count : (Netlist.cell_id, int) Hashtbl.t;
      (** how often each flop was within 2% of the sample's worst
          stage delay — the raw data for Razor site selection *)
}

val run :
  ?config:config ->
  ?engine:engine ->
  ?vdd:(Netlist.cell_id -> float) ->
  ?pool:Pvtol_util.Pool.t ->
  sampler:Pvtol_variation.Sampler.t ->
  sta:Pvtol_timing.Sta.t ->
  placement:Pvtol_place.Placement.t ->
  position:Pvtol_variation.Position.t ->
  unit ->
  result
(** [vdd] defaults to the library's low supply for every cell;
    [engine] defaults to {!engine_of_env}.

    The sample range is cut into fixed 32-sample chunks executed on
    [pool] (default {!Pvtol_util.Pool.shared}, sized by the
    [PVTOL_DOMAINS] environment variable).  Each chunk reconstructs —
    via an O(1) SplitMix64 jump ({!Pvtol_util.Srng.jump}) — the exact
    RNG state the legacy serial loop would hold at the chunk's first
    sample, and every chunk writes a disjoint slice of the sample
    arrays, so the output is {e bit-identical} for every domain count
    (and, under [Golden], to the pre-parallel serial engine).  The
    [Batched] engine consumes the same gaussian stream chunk by chunk
    and is likewise domain-count invariant; versus [Golden] its
    worst-slack samples differ only within the documented delay-scale
    fit bound.  Per-worker workspaces keep both inner loops free of
    per-sample heap allocation. *)

val stage_stats : result -> Stage.t -> stage_stats option

val three_sigma_delay : stage_stats -> float
(** mean + 3 sigma of the stage's worst-delay distribution. *)
