(** Gate-level construction context shared by all datapath generators.

    A [t] wraps a {!Pvtol_netlist.Netlist.Builder} together with the
    pipeline stage and functional-unit name to tag emitted cells with;
    {!within} rebinds the tags for a sub-block.  Buses are plain
    [net array]s, least-significant bit first. *)

open Pvtol_netlist

type net = Netlist.net_id
type bus = net array

type t

val create :
  ?design_name:string -> seed:int -> Pvtol_stdcell.Cell.library -> t

val builder : t -> Netlist.Builder.t
val rng : t -> Pvtol_util.Srng.t

val within : t -> ?stage:Stage.t -> ?unit_name:string -> unit -> t
(** A context sharing the same builder with different tags. *)

val stage : t -> Stage.t
val unit_name : t -> string

(** {2 Single gates}  Each returns the output net. *)

val gate :
  t -> ?drive:Pvtol_stdcell.Cell.drive -> Pvtol_stdcell.Kind.t -> net array -> net

val inv : t -> net -> net
val buf : t -> ?drive:Pvtol_stdcell.Cell.drive -> net -> net
val and2 : t -> net -> net -> net
val or2 : t -> net -> net -> net
val nand2 : t -> net -> net -> net
val nor2 : t -> net -> net -> net
val xor2 : t -> net -> net -> net
val xnor2 : t -> net -> net -> net
val aoi21 : t -> net -> net -> net -> net
(** [aoi21 a b c] = !(a*b + c) *)

val oai21 : t -> net -> net -> net -> net
val mux2 : t -> net -> net -> sel:net -> net
(** [mux2 a b ~sel] = if sel then b else a *)

val dff : t -> net -> net

val dff_deferred : t -> net * (net -> unit)
(** Creates a flop whose D input is connected later:
    returns its Q net and a patch function that must be called exactly
    once with the real D net before the netlist is frozen.  Closes
    sequential feedback loops such as a register's hold mux. *)

val tie0 : t -> net
val tie1 : t -> net

(** {2 Buses} *)

val inputs : t -> string -> int -> bus
(** [inputs t name w] declares w primary inputs [name[0..w-1]]. *)

val outputs : t -> string -> bus -> unit

val reg_bus : t -> bus -> bus
(** One DFF per bit. *)

val mux2_bus : t -> bus -> bus -> sel:net -> bus
val const_bus : t -> int -> width:int -> bus
(** Tie-cell encoding of a constant (LSB first). *)

(** {2 Fanout management} *)

val fanout_tree : t -> ?fanout:int -> ?drive:Pvtol_stdcell.Cell.drive -> net -> int -> net array
(** [fanout_tree t net n] returns [n] buffered copies of [net], built
    as a balanced buffer tree with at most [fanout] (default 8) sinks
    per driver.  Used for high-fanout control signals; register-file
    structures deliberately use a high [fanout] so their paths stay
    RC-dominated, as in synthesized (non-custom) register files. *)

val and_tree : t -> net list -> net
(** Balanced AND reduction (returns tie1 for an empty list). *)

val or_tree : t -> net list -> net
val xor_tree : t -> net list -> net
