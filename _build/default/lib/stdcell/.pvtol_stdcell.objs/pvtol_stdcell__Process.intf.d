lib/stdcell/process.mli:
