(* FIR workload power analysis: run the FIR benchmark on the VLIW
   instruction-set simulator, drive the gate-level netlist with the
   resulting instruction trace, and report the PrimePower-style power
   breakdown — the paper's power-measurement pipeline in miniature.

     dune exec examples/fir_power.exe *)

module Fir = Pvtol_vexsim.Fir
module Sim = Pvtol_vexsim.Sim
module Asm = Pvtol_vexsim.Asm
module Gatesim = Pvtol_power.Gatesim
module Power = Pvtol_power.Power
module Netlist = Pvtol_netlist.Netlist
module Placement = Pvtol_place.Placement

let () =
  (* 1. The benchmark on the ISS, checked against a direct convolution. *)
  let fir = Fir.run ~taps:16 ~samples:64 () in
  Format.printf "FIR on the VEX ISS: %d cycles, %d ops (IPC %.2f), %s@."
    fir.Fir.stats.Sim.cycles fir.Fir.stats.Sim.ops_executed
    (Sim.ipc fir.Fir.stats)
    (if Fir.check fir then "output matches the reference convolution"
     else "OUTPUT MISMATCH");
  Format.printf "  per-slot utilization: %s@."
    (String.concat " "
       (Array.to_list
          (Array.mapi
             (fun i n ->
               Printf.sprintf "slot%d=%.0f%%" i
                 (100.0 *. float_of_int n /. float_of_int fir.Fir.stats.Sim.cycles))
             fir.Fir.stats.Sim.slot_active)));

  (* A taste of the assembler: print the first bundles of the program. *)
  let src = Fir.program ~taps:16 ~samples:64 in
  let prog = Asm.assemble src in
  Format.printf "@.First bundles of the FIR program:@.%s@."
    (String.concat "\n"
       (List.filteri (fun i _ -> i < 5)
          (String.split_on_char '\n' (Asm.disassemble prog))));

  (* 2. Gate-level switching activity under that instruction stream. *)
  let design = Pvtol_vex.Vex_core.build Pvtol_vex.Vex_core.small_config in
  let nl = design.Pvtol_vex.Vex_core.netlist in
  let fp = Pvtol_place.Floorplan.create ~cell_area:(Netlist.area nl) () in
  let placement = Pvtol_place.Placer.place nl fp in
  let stim, trace_cycles =
    Gatesim.trace_stimulus nl ~instr_prefix:"instr" ~words:fir.Fir.trace
      ~fallback:(Gatesim.random_stimulus ~seed:11)
  in
  let activity = Gatesim.run ~cycles:256 nl stim in
  Format.printf "Gate-level simulation: 256 of %d trace cycles, mean toggle rate %.3f@."
    trace_cycles (Gatesim.mean_rate activity);

  (* 3. Power report at the nominal corner. *)
  let sta =
    Pvtol_timing.Sta.of_placement placement
      ~capture:design.Pvtol_vex.Vex_core.capture_stage
  in
  let r = Pvtol_timing.Sta.analyze sta ~delays:(Pvtol_timing.Sta.nominal_delays sta) in
  let report =
    Power.analyze
      ~vdd:(fun _ -> 1.0)
      ~activity
      ~wire_length:(fun nid -> Placement.wire_length placement nid)
      ~clock_ns:r.Pvtol_timing.Sta.worst nl
  in
  Format.printf "@.%a" Power.pp report
