lib/place/incremental.ml: Array Float Floorplan List Netlist Placement Pvtol_netlist Pvtol_util
