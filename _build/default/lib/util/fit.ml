type normal = { mu : float; sigma : float }

type gof = {
  statistic : float;
  dof : int;
  critical : float;
  p_value : float;
  accepted : bool;
}

let fit_normal xs =
  let s = Stats.summarize xs in
  { mu = s.Stats.mean; sigma = s.Stats.stddev }

(* Build equiprobable-ish bins from the sample range, then merge bins whose
   expected count under the fitted normal is below 5. *)
let chi2_gof ?(confidence = 0.95) ?bins:nbins xs normal =
  let n = Array.length xs in
  assert (n >= 8);
  let h = Histo.of_samples ?bins:nbins xs in
  let nb = Histo.bins h in
  let expected_of_bin i =
    let c = Histo.bin_center h i in
    let w = Histo.bin_width h in
    let cdf x = Specfun.normal_cdf ~mu:normal.mu ~sigma:(max normal.sigma 1e-12) x in
    float_of_int n *. (cdf (c +. (w /. 2.0)) -. cdf (c -. (w /. 2.0)))
  in
  (* Merge adjacent bins until every merged bin has expected >= 5. *)
  let observed = ref [] and expected = ref [] in
  let acc_o = ref 0 and acc_e = ref 0.0 in
  for i = 0 to nb - 1 do
    acc_o := !acc_o + Histo.bin_count h i;
    acc_e := !acc_e +. expected_of_bin i;
    if !acc_e >= 5.0 then begin
      observed := !acc_o :: !observed;
      expected := !acc_e :: !expected;
      acc_o := 0;
      acc_e := 0.0
    end
  done;
  (* Fold any leftover tail into the last emitted bin. *)
  (match (!observed, !expected) with
  | o :: os, e :: es when !acc_e > 0.0 || !acc_o > 0 ->
    observed := (o + !acc_o) :: os;
    expected := (e +. !acc_e) :: es
  | _ -> ());
  let observed = Array.of_list (List.rev !observed) in
  let expected = Array.of_list (List.rev !expected) in
  let k = Array.length observed in
  let statistic = ref 0.0 in
  for i = 0 to k - 1 do
    let d = float_of_int observed.(i) -. expected.(i) in
    statistic := !statistic +. (d *. d /. max expected.(i) 1e-12)
  done;
  let dof = max 1 (k - 1 - 2) in
  let alpha = 1.0 -. confidence in
  let critical = Specfun.chi2_critical ~dof ~alpha in
  let p_value = 1.0 -. Specfun.chi2_cdf ~dof !statistic in
  { statistic = !statistic; dof; critical; p_value; accepted = !statistic <= critical }

let fit_and_test ?confidence xs =
  let normal = fit_normal xs in
  (normal, chi2_gof ?confidence xs normal)
