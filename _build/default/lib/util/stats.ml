module Running = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
end

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let summarize xs =
  assert (Array.length xs > 0);
  let acc = Running.create () in
  Array.iter (Running.add acc) xs;
  {
    n = Running.count acc;
    mean = Running.mean acc;
    stddev = Running.stddev acc;
    min = Running.min acc;
    max = Running.max acc;
  }

let mean xs = (summarize xs).mean
let stddev xs = (summarize xs).stddev

let quantile xs p =
  assert (Array.length xs > 0 && p >= 0.0 && p <= 1.0);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = pos -. float_of_int lo in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let three_sigma s = s.mean +. (3.0 *. s.stddev)
