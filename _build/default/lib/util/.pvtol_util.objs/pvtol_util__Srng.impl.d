lib/util/srng.ml: Array Float Int64
