let () =
  Alcotest.run "pvtol"
    [
      Test_util.suite;
      Test_telemetry.suite;
      Test_observability.suite;
      Test_stage.suite;
      Test_stdcell.suite;
      Test_netlist.suite;
      Test_vex.suite;
      Test_vexsim.suite;
      Test_place.suite;
      Test_timing.suite;
      Test_variation.suite;
      Test_ssta.suite;
      Test_power.suite;
      Test_core.suite;
      Test_extensions.suite;
      Test_postsilicon.suite;
      Test_compensation.suite;
      Test_engines.suite;
      Test_sampling.suite;
      Test_properties.suite;
      Test_misc.suite;
    ]
