open Gen

type flags = { zero : net; negative : net; equal : net; less_than : net }

let flags t ~alu_result ~a ~b =
  let w = Array.length alu_result in
  assert (Array.length a = w && Array.length b = w && w > 1);
  let zero =
    inv t (or_tree t (Array.to_list alu_result))
  in
  let negative = buf t alu_result.(w - 1) in
  let equal = and_tree t (Array.to_list (Array.map2 (xnor2 t) a b)) in
  (* Signed less-than from a - b: lt = (sign a <> sign b) ? sign a
                                       : sign (a - b). *)
  let diff, _ = Adder.ripple t ~cin:(tie1 t) a (Array.map (inv t) b) in
  let sign_differs = xor2 t a.(w - 1) b.(w - 1) in
  let less_than = mux2 t diff.(w - 1) a.(w - 1) ~sel:sign_differs in
  { zero; negative; equal; less_than }

let equal_const t bus v =
  let bits =
    Array.to_list
      (Array.mapi
         (fun i n -> if (v lsr i) land 1 = 1 then buf t n else inv t n)
         bus)
  in
  and_tree t bits
