lib/vex/forwarding.ml: Array Gen
