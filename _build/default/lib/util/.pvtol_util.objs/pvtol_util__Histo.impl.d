lib/util/histo.ml: Array Buffer Float Printf String
