(** Barrel shifter generator.  The execute-stage slots place a shifter
    in series with the ALU for shift-and-accumulate instructions, as in
    the paper's VEX configuration. *)

open Gen

type direction = Left | Right

val barrel : t -> dir:net -> amount:bus -> bus -> bus
(** [barrel t ~dir ~amount data] shifts [data] by [amount] (log2-width
    control bus) in the direction selected by [dir] (0 = left,
    1 = right logical).  Built as one mux2 layer per amount bit. *)

val fixed : t -> direction -> int -> bus -> bus
(** Shift by a compile-time constant (zero-filled); free of gates for
    the moved bits, tie cells for the filled positions. *)
