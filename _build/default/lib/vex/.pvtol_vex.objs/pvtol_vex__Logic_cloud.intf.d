lib/vex/logic_cloud.mli: Gen
