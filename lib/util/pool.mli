(** Fixed-size domain pool for deterministic data-parallel fan-out.

    A pool owns [domains - 1] worker domains (the calling domain is the
    remaining participant) that stay alive across jobs, so repeated
    fan-outs — e.g. one per Monte-Carlo run — pay the domain-spawn cost
    once.  Work is expressed as a fixed range of {e chunk} indices;
    workers self-schedule chunks from a shared counter, but every
    chunk's result is stored at its own index, so the reduction is
    ordered and the output is independent of the schedule and of the
    domain count.

    The pool size comes from, in priority order: the [?domains]
    argument, the [PVTOL_DOMAINS] environment variable, and
    [Domain.recommended_domain_count ()].

    Nested use is guarded: calling {!parallel_chunks} from inside a
    pool task (any pool's task) runs the inner job serially in the
    calling worker instead of deadlocking on the pool's own queue.
    Pools are otherwise for use from a single orchestrating domain;
    concurrent jobs on one pool from several domains are not
    supported. *)

type t

val create : ?domains:int -> unit -> t
(** [create ()] spawns the worker domains.  [?domains] must be >= 1;
    [1] means no workers are spawned and every job runs serially in the
    caller.  Raises [Invalid_argument] on a non-positive count. *)

val domains : t -> int
(** Total parallelism of the pool, including the calling domain. *)

val default_domain_count : unit -> int
(** [PVTOL_DOMAINS] if set to a positive integer (clamped to 64), else
    [Domain.recommended_domain_count ()].  A non-numeric, zero or
    negative [PVTOL_DOMAINS] is ignored with a single warning on stderr
    and the hardware default is used. *)

val shared : unit -> t
(** A lazily-created process-wide pool of {!default_domain_count}
    domains, shut down automatically at exit.  Library code that has
    not been handed an explicit pool should use this one. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent.  Any later job on the pool
    runs serially in the caller.  Never call it from inside a task. *)

val parallel_chunks :
  t -> chunks:int -> init:(worker:int -> 's) -> f:('s -> int -> 'a) -> 'a array
(** [parallel_chunks pool ~chunks ~init ~f] evaluates [f state c] for
    every chunk index [c] in [0 .. chunks-1] and returns the results in
    chunk order.  Each participating domain first builds its private
    [state] with [init ~worker] (worker ids are dense, assigned per
    job), so scratch buffers can be reused across the chunks a worker
    processes without any sharing.

    If one or more chunks raise, the remaining chunks still run and
    the exception of the lowest-numbered failing chunk is re-raised in
    the caller; the pool stays usable. *)

val map : t -> f:('a -> 'b) -> 'a array -> 'b array
(** [map pool ~f arr] applies [f] to every element in parallel (one
    chunk per element), preserving order. *)
