test/main.mli:
