open Pvtol_netlist
module Geom = Pvtol_util.Geom

let widths (p : Placement.t) =
  Array.map
    (fun (c : Netlist.cell) -> Placement.cell_width c p.Placement.floorplan)
    p.Placement.netlist.Netlist.cells

(* Assign cells to rows near their global y, spilling from overfull rows
   to the nearest non-full neighbour. *)
let assign_rows (p : Placement.t) w =
  let fp = p.Placement.floorplan in
  let n_rows = fp.Floorplan.n_rows in
  let capacity = Floorplan.row_capacity fp in
  let fill = Array.make n_rows 0.0 in
  let rows = Array.make n_rows [] in
  let n = Array.length p.Placement.xs in
  let order = Array.init n (fun i -> i) in
  (* Stable processing order: by distance-insensitive id keeps runs
     deterministic; cells are placed into their preferred row when it
     has room, else the nearest row with room. *)
  Array.iter
    (fun i ->
      let prefer = Floorplan.row_of_y fp p.Placement.ys.(i) in
      let rec probe d =
        let lo = prefer - d and hi = prefer + d in
        let try_row r =
          r >= 0 && r < n_rows && fill.(r) +. w.(i) <= capacity
        in
        if try_row lo then lo
        else if try_row hi then hi
        else if lo < 0 && hi >= n_rows then
          (* Everything full (should not happen below 100% util):
             fall back to the least-filled row. *)
          let best = ref 0 in
          let () =
            for r = 1 to n_rows - 1 do
              if fill.(r) < fill.(!best) then best := r
            done
          in
          !best
        else probe (d + 1)
      in
      let r = probe 0 in
      fill.(r) <- fill.(r) +. w.(i);
      rows.(r) <- i :: rows.(r))
    order;
  rows

(* Abacus-lite within a row: left-to-right pass enforcing ordering and
   non-overlap, then a right-to-left pass pulling the tail back inside
   the row.  [padding] accumulates a whitespace debt that is paid out
   as discrete [quantum]-sized gaps, so the reserved ECO space is
   usable by real cells rather than fragmented into slivers. *)
let pack_row ?(padding = 0.0) ?(quantum = 6.0) (p : Placement.t) w row cells =
  let fp = p.Placement.floorplan in
  let core = fp.Floorplan.core in
  let site = fp.Floorplan.site_width in
  let y = Floorplan.row_y fp row +. (fp.Floorplan.row_height /. 2.0) in
  let cells = List.sort (fun a b -> compare p.Placement.xs.(a) p.Placement.xs.(b)) cells in
  let arr = Array.of_list cells in
  let n = Array.length arr in
  if n > 0 then begin
    let lefts = Array.make n 0.0 in
    let cursor = ref core.Geom.llx in
    let debt = ref 0.0 in
    for k = 0 to n - 1 do
      let i = arr.(k) in
      let desired = p.Placement.xs.(i) -. (w.(i) /. 2.0) in
      let snapped =
        core.Geom.llx
        +. (Float.round ((Float.max desired !cursor -. core.Geom.llx) /. site) *. site)
      in
      let x = Float.max snapped !cursor in
      lefts.(k) <- x;
      cursor := x +. w.(i);
      if padding > 0.0 then begin
        debt := !debt +. (w.(i) *. padding);
        if !debt >= quantum then begin
          cursor := !cursor +. !debt;
          debt := 0.0
        end
      end
    done;
    (* Pull back anything that ran past the right edge. *)
    let limit = ref core.Geom.urx in
    for k = n - 1 downto 0 do
      let i = arr.(k) in
      if lefts.(k) +. w.(i) > !limit then lefts.(k) <- !limit -. w.(i);
      limit := lefts.(k)
    done;
    for k = 0 to n - 1 do
      let i = arr.(k) in
      p.Placement.xs.(i) <- lefts.(k) +. (w.(i) /. 2.0);
      p.Placement.ys.(i) <- y
    done
  end

let pack_one_row p widths row cells = pack_row p widths row cells

let run ?(padding = 0.0) p =
  let w = widths p in
  (* Capacity accounting sees the inflated footprints so rows keep room
     for their share of reserved gaps. *)
  let padded = Array.map (fun x -> x *. (1.0 +. padding)) w in
  let rows = assign_rows p padded in
  Array.iteri (fun r cells -> pack_row ~padding p w r cells) rows

let check (p : Placement.t) =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let fp = p.Placement.floorplan in
  let core = fp.Floorplan.core in
  let w = widths p in
  let by_row = Hashtbl.create 64 in
  Array.iteri
    (fun i _ ->
      let y = p.Placement.ys.(i) in
      let r = Floorplan.row_of_y fp y in
      let expect_y = Floorplan.row_y fp r +. (fp.Floorplan.row_height /. 2.0) in
      if Float.abs (y -. expect_y) > 1e-6 then err "cell %d not on a row center" i;
      let left = p.Placement.xs.(i) -. (w.(i) /. 2.0) in
      if left < core.Geom.llx -. 1e-6 || left +. w.(i) > core.Geom.urx +. 1e-6 then
        err "cell %d outside core" i;
      Hashtbl.replace by_row r
        ((i, left, left +. w.(i)) :: Option.value (Hashtbl.find_opt by_row r) ~default:[]))
    p.Placement.xs;
  Hashtbl.iter
    (fun r cells ->
      let sorted = List.sort (fun (_, l1, _) (_, l2, _) -> compare l1 l2) cells in
      let rec overlaps = function
        | (i1, _, r1) :: ((i2, l2, _) :: _ as rest) ->
          if r1 > l2 +. 1e-6 then err "row %d: cells %d and %d overlap" r i1 i2;
          overlaps rest
        | _ -> ()
      in
      overlaps sorted)
    by_row;
  match !errors with [] -> Ok () | es -> Error (List.rev es)
