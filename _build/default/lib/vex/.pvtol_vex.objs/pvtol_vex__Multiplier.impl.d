lib/vex/multiplier.ml: Adder Array Gen Lazy List
