(* Scenario sweep: move the core along the chip diagonal (the paper's
   A -> D trajectory, Fig. 2) and watch the violation scenario relax
   one pipeline stage at a time — the empirical basis for the island
   count.

     dune exec examples/scenario_sweep.exe *)

module Flow = Pvtol_core.Flow
module Scenario = Pvtol_ssta.Scenario
module MC = Pvtol_ssta.Monte_carlo
module Position = Pvtol_variation.Position
module Stage = Pvtol_netlist.Stage

let () =
  let t = Flow.prepare ~config:Flow.quick_config () in
  Format.printf "clock %.3f ns; sweeping the chip diagonal:@." (Flow.clock t);
  Format.printf "%-10s %-9s %-28s %s@." "fraction" "scenario" "violating stages"
    "worst 3-sigma slack (ns)";
  let previous = ref (-1) in
  List.iter
    (fun frac ->
      let pos = Position.at_fraction frac in
      let mc =
        MC.run
          ~config:{ MC.samples = 120; seed = 42 }
          ~sampler:(Flow.sampler t) ~sta:(Flow.sta t) ~placement:(Flow.placement t)
          ~position:pos ()
      in
      let sc = Scenario.classify ~clock:(Flow.clock t) mc in
      let worst =
        List.fold_left
          (fun acc (s : Scenario.stage_slack) -> Float.min acc s.Scenario.slack)
          infinity sc.Scenario.stage_slacks
      in
      Format.printf "%-10.2f %-9d %-28s %+.3f%s@." frac sc.Scenario.index
        (if sc.Scenario.violating = [] then "-"
         else String.concat ", " (List.map Stage.name sc.Scenario.violating))
        worst
        (if sc.Scenario.index <> !previous then "   <- transition" else "");
      previous := sc.Scenario.index)
    [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ];
  Format.printf
    "@.The named positions A/B/C/D sit at fractions 0.00 / 0.25 / 0.55 / 0.80.@."
