lib/core/retiming.ml: Float List Pvtol_netlist Stage
