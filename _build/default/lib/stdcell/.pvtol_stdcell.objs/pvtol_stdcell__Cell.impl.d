lib/stdcell/cell.ml: Kind List Process String
