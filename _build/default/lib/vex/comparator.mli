(** Compare unit: per the paper, each execute slot carries "a compare
    unit checking MSB bits of ALU results".  Produces zero, negative,
    equality and signed less-than flags. *)

open Gen

type flags = { zero : net; negative : net; equal : net; less_than : net }

val flags : t -> alu_result : bus -> a:bus -> b:bus -> flags
(** [flags t ~alu_result ~a ~b]: [zero]/[negative] inspect the ALU
    result (negative = MSB); [equal]/[less_than] compare the raw
    operands (signed). *)

val equal_const : t -> bus -> int -> net
(** [equal_const t bus v] — match a bus against a constant; used by
    register-address decoders. *)
