lib/core/logic_grouping.ml: Array Hashtbl List Netlist Option Printf Pvtol_netlist Pvtol_place Pvtol_stdcell Pvtol_timing Pvtol_util Pvtol_variation Slicing Stage
