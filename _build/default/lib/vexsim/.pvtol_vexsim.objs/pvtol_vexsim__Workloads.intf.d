lib/vexsim/workloads.mli: Int32 Sim
