(** Structured leveled logging with a mutex-protected sink.

    Replaces ad-hoc [Printf.eprintf] calls scattered through the
    libraries: every message carries a level, is filtered against the
    process threshold ([PVTOL_LOG] environment variable, default
    [warn]), and is written through one sink under a mutex so lines
    from concurrent domains never interleave.

    [PVTOL_LOG] accepts [quiet], [error], [warn], [info] or [debug]
    (case-insensitive); anything else leaves the default. *)

type level = Error | Warn | Info | Debug

val level_name : level -> string
val level_of_string : string -> level option

val set_level : level -> unit
(** Messages above this level are dropped. *)

val set_quiet : unit -> unit
(** Drop everything, including errors. *)

val level_enabled : level -> bool

val err : ('a, unit, string, unit) format4 -> 'a
val warn : ('a, unit, string, unit) format4 -> 'a
val info : ('a, unit, string, unit) format4 -> 'a
val debug : ('a, unit, string, unit) format4 -> 'a

type once
(** One-shot latch for warn-once call sites, backed by an [Atomic.t]:
    safe to race from any number of domains, fires exactly once. *)

val once : unit -> once

val warn_once : once -> ('a, unit, string, unit) format4 -> 'a
(** Emit the warning the first time this latch is hit (if [Warn] is
    enabled at that moment); later calls are no-ops. *)

val set_sink : (level -> string -> unit) -> unit
(** Replace the output sink (tests, custom routing).  The sink
    receives the raw message; serialization is the sink's concern —
    {!default_sink} takes the global log mutex. *)

val default_sink : level -> string -> unit
(** The standard sink: ["pvtol: [<level>] <msg>\n"] to stderr,
    flushed, under the log mutex. *)
