(* Strategy comparison harness: the shared detect pass of
   [Compensation], fanned out over the same wafer grid as [Wafer] (same
   positions, same per-cell RNG seeds), with every selected strategy
   applied to every die.  Row-major ordered reduction keeps reports
   bit-identical for any domain count. *)
module Sg = Stage
module Pool = Pvtol_util.Pool
module Srng = Pvtol_util.Srng
module Stream_stats = Pvtol_util.Stream_stats
module Welford = Stream_stats.Welford
module Table = Pvtol_util.Table
module Metrics = Pvtol_util.Metrics

let m_compare_dies = Metrics.counter "compare_dies_total"

type config = {
  nx : int;
  ny : int;
  dies_per_cell : int;
  fields : int;
  seed : int;
  direction : Island.direction;
  choices : Compensation.choice list;
}

let default_config =
  {
    nx = 8;
    ny = 8;
    dies_per_cell = 12;
    fields = 1;
    seed = 7;
    direction = Island.Vertical;
    choices = Compensation.all_choices;
  }

(* The grid geometry and seeding are Wafer's, by construction: convert
   the config and call its helpers, so a die at (field, ix, iy, index)
   sees the same systematic map and the same random draw in both
   sweeps. *)
let wafer_config cfg : Wafer.config =
  {
    Wafer.nx = cfg.nx;
    ny = cfg.ny;
    dies_per_cell = cfg.dies_per_cell;
    fields = cfg.fields;
    seed = cfg.seed;
    direction = cfg.direction;
  }

type strategy_result = {
  name : string;
  title : string;
  knob_units : string;
  yield : float;
  mean_power_mw : float;
  mean_knob : float;
  knob_total : int;
  mean_area_um2 : float;
  static_area_um2 : float;
  max_knob : int;
}

type report = {
  config : config;
  clock_ns : float;
  dies : int;
  yield_uncompensated : float;
  power_baseline_mw : float;
  results : strategy_result list;
}

(* ------------------------------------------------------------------ *)
(* Per-cell accumulators (one sub-accumulator per strategy)             *)

type sacc = {
  mutable s_meets : int;
  mutable s_knob : int;
  s_power : Welford.t;
  s_knobs : Welford.t;
  s_area : Welford.t;
}

type acc = {
  mutable a_dies : int;
  mutable a_unc : int;
  a_strats : sacc array;
}

let acc_create n =
  {
    a_dies = 0;
    a_unc = 0;
    a_strats =
      Array.init n (fun _ ->
          {
            s_meets = 0;
            s_knob = 0;
            s_power = Welford.create ();
            s_knobs = Welford.create ();
            s_area = Welford.create ();
          });
  }

let sacc_add sa (o : Compensation.outcome) =
  if o.Compensation.meets then sa.s_meets <- sa.s_meets + 1;
  sa.s_knob <- sa.s_knob + o.Compensation.knob;
  Welford.add sa.s_power o.Compensation.power_mw;
  Welford.add sa.s_knobs (float_of_int o.Compensation.knob);
  Welford.add sa.s_area o.Compensation.area_um2

(* ------------------------------------------------------------------ *)
(* The sweep                                                            *)

let rec has_dup = function
  | [] -> false
  | c :: rest -> List.mem c rest || has_dup rest

let run ?pool (t : Flow.t) (v : Flow.variant) cfg =
  if cfg.nx <= 0 || cfg.ny <= 0 || cfg.dies_per_cell <= 0 || cfg.fields <= 0
  then invalid_arg "Compare.run: grid, dies and fields must be positive";
  if cfg.choices = [] then invalid_arg "Compare.run: no strategies selected";
  if has_dup cfg.choices then
    invalid_arg "Compare.run: duplicate strategy selected";
  if v.Flow.direction <> cfg.direction then
    invalid_arg "Compare.run: variant direction does not match the config";
  let ctx = Compensation.context t in
  let strategies =
    Array.of_list (List.map (Compensation.build t ctx v) cfg.choices)
  in
  let n_strats = Array.length strategies in
  let wcfg = wafer_config cfg in
  let pool = match pool with Some p -> p | None -> Pool.shared () in
  let total_cells = cfg.nx * cfg.ny in
  (* One chunk per grid cell; each worker carries the shared detect
     scratch plus one private apply state per strategy, reused across
     every cell it picks up.  A cell's dies run serially field-major,
     applying the strategies in request order on each die. *)
  let accs =
    Pool.parallel_chunks pool ~chunks:total_cells
      ~init:(fun ~worker:_ ->
        ( Compensation.scratch ctx,
          Array.map (fun s -> s.Compensation.fresh_apply ()) strategies ))
      ~f:(fun (sc, applies) c ->
        let ix = c mod cfg.nx and iy = c / cfg.nx in
        let systematic =
          Compensation.systematic ctx (Wafer.cell_position wcfg ~ix ~iy)
        in
        let acc = acc_create n_strats in
        for field = 0 to cfg.fields - 1 do
          let rng = Srng.create (Wafer.cell_seed wcfg ~field ~ix ~iy) in
          for _ = 1 to cfg.dies_per_cell do
            let d = Compensation.detect ctx sc ~systematic rng in
            acc.a_dies <- acc.a_dies + 1;
            if d.Compensation.violating = 0 then acc.a_unc <- acc.a_unc + 1;
            for i = 0 to n_strats - 1 do
              sacc_add acc.a_strats.(i) (applies.(i) sc d)
            done
          done
        done;
        Metrics.add m_compare_dies acc.a_dies;
        acc)
  in
  (* Ordered reduction (row-major): totals are bit-identical no matter
     how the chunks were scheduled. *)
  let total = acc_create n_strats in
  Array.iter
    (fun acc ->
      total.a_dies <- total.a_dies + acc.a_dies;
      total.a_unc <- total.a_unc + acc.a_unc;
      Array.iteri
        (fun i sa ->
          let ta = total.a_strats.(i) in
          ta.s_meets <- ta.s_meets + sa.s_meets;
          ta.s_knob <- ta.s_knob + sa.s_knob;
          Welford.merge ~into:ta.s_power sa.s_power;
          Welford.merge ~into:ta.s_knobs sa.s_knobs;
          Welford.merge ~into:ta.s_area sa.s_area)
        acc.a_strats)
    accs;
  let dies = float_of_int total.a_dies in
  let results =
    Array.to_list
      (Array.mapi
         (fun i (s : Compensation.strategy) ->
           let sa = total.a_strats.(i) in
           {
             name = s.Compensation.name;
             title = s.Compensation.title;
             knob_units = s.Compensation.knob_units;
             yield = float_of_int sa.s_meets /. dies;
             mean_power_mw = Welford.mean sa.s_power;
             mean_knob = Welford.mean sa.s_knobs;
             knob_total = sa.s_knob;
             mean_area_um2 = Welford.mean sa.s_area;
             static_area_um2 = s.Compensation.static_area_um2;
             max_knob = s.Compensation.max_knob;
           })
         strategies)
  in
  {
    config = cfg;
    clock_ns = Compensation.clock ctx;
    dies = total.a_dies;
    yield_uncompensated = float_of_int total.a_unc /. dies;
    power_baseline_mw = Compensation.power_baseline_mw ctx;
    results;
  }

(* ------------------------------------------------------------------ *)
(* Stage-graph exposure                                                 *)

let config_label cfg =
  Printf.sprintf "%dx%d-d%d-f%d-s%d-%s-%s" cfg.nx cfg.ny cfg.dies_per_cell
    cfg.fields cfg.seed
    (Island.direction_name cfg.direction)
    (Compensation.choices_label cfg.choices)

(* One keyed stage family per flow handle, registered on its graph the
   first time a comparison is requested (the family cannot be declared
   in Flow itself: Compare sits above Flow in the module order). *)
let families_mu = Mutex.create ()
let families : (Sg.graph * (config, report) Sg.keyed) list ref = ref []

let family (t : Flow.t) : (config, report) Sg.keyed =
  let g = Flow.graph t in
  Mutex.lock families_mu;
  let f =
    match List.find_opt (fun (g', _) -> g' == g) !families with
    | Some (_, f) -> f
    | None ->
      let f =
        Sg.keyed g ~name:"compare"
          ~deps:(fun cfg ->
            [ "sta"; "placed"; "sampler"; "clock";
              "shifters[" ^ Island.direction_name cfg.direction ^ "]" ])
          ~key_label:config_label
          (fun cfg -> run t (Flow.variant t cfg.direction) cfg)
      in
      families := (g, f) :: !families;
      f
  in
  Mutex.unlock families_mu;
  f

let compare t cfg = Sg.get_keyed (family t) cfg

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

let render r =
  let cfg = r.config in
  let tbl =
    Table.create
      ~header:
        [ "strategy"; "yield"; "mean power"; "vs base"; "mean knob";
          "exercised area"; "static area" ]
  in
  Table.add_row tbl
    [ "uncompensated"; Table.pcell r.yield_uncompensated;
      Table.fcell ~decimals:2 r.power_baseline_mw ^ " mW"; "+0.0%"; "-"; "-";
      "-" ];
  Table.add_sep tbl;
  List.iter
    (fun s ->
      Table.add_row tbl
        [
          s.title;
          Table.pcell s.yield;
          Table.fcell ~decimals:2 s.mean_power_mw ^ " mW";
          Printf.sprintf "%+.1f%%"
            (100.0 *. ((s.mean_power_mw /. r.power_baseline_mw) -. 1.0));
          Printf.sprintf "%.2f %s" s.mean_knob s.knob_units;
          Table.fcell ~decimals:1 s.mean_area_um2 ^ " um2";
          Table.fcell ~decimals:1 s.static_area_um2 ^ " um2";
        ])
    r.results;
  Printf.sprintf
    "strategy comparison: %dx%d grid x %d dies/cell x %d field(s) = %d dies \
     (%s slicing, clock %.3f ns)\n%s"
    cfg.nx cfg.ny cfg.dies_per_cell cfg.fields r.dies
    (Island.direction_name cfg.direction)
    r.clock_ns
    (Table.render tbl)

let pp fmt r = Format.pp_print_string fmt (render r)

(* ------------------------------------------------------------------ *)
(* JSON export                                                          *)

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let to_json r =
  let cfg = r.config in
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"grid\": { \"nx\": %d, \"ny\": %d },\n" cfg.nx cfg.ny;
  add "  \"dies_per_cell\": %d,\n" cfg.dies_per_cell;
  add "  \"fields\": %d,\n" cfg.fields;
  add "  \"seed\": %d,\n" cfg.seed;
  add "  \"direction\": \"%s\",\n" (Island.direction_name cfg.direction);
  add "  \"clock_ns\": %s,\n" (json_float r.clock_ns);
  add "  \"dies\": %d,\n" r.dies;
  add "  \"yield_uncompensated\": %s,\n" (json_float r.yield_uncompensated);
  add "  \"power_baseline_mw\": %s,\n" (json_float r.power_baseline_mw);
  add "  \"strategies\": [\n";
  List.iteri
    (fun i s ->
      add
        "    { \"name\": \"%s\", \"title\": \"%s\", \"yield\": %s, \
         \"mean_power_mw\": %s, \"mean_knob\": %s, \"knob_total\": %d, \
         \"knob_units\": \"%s\", \"max_knob\": %d, \"mean_area_um2\": %s, \
         \"static_area_um2\": %s }%s\n"
        s.name s.title (json_float s.yield)
        (json_float s.mean_power_mw)
        (json_float s.mean_knob)
        s.knob_total s.knob_units s.max_knob
        (json_float s.mean_area_um2)
        (json_float s.static_area_um2)
        (if i < List.length r.results - 1 then "," else ""))
    r.results;
  add "  ]\n}\n";
  Buffer.contents buf
