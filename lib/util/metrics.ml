(* Metrics registry over per-domain shards.  See metrics.mli for the
   contract.

   Hot-path design: each metric owns a [Domain.DLS] key whose
   initializer creates that domain's shard and pushes it onto the
   metric's shard list (a lock-free CAS stack).  An update is then a
   DLS lookup plus a plain mutable store — no lock, no atomic RMW, no
   allocation.  Reads merge the shards sorted by creating-domain id;
   integer counts merge by exact addition, so deterministic workloads
   give bit-identical counters for any domain count. *)

let enabled_flag =
  ref
    (match Sys.getenv_opt "PVTOL_METRICS" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | _ -> false)

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let push_shard shards s =
  let rec go () =
    let old = Atomic.get shards in
    if not (Atomic.compare_and_set shards old (s :: old)) then go ()
  in
  go ()

let by_domain domain_of shards =
  List.sort (fun a b -> compare (domain_of a) (domain_of b)) shards

(* --- counters --- *)

type counter_shard = { c_domain : int; mutable c_count : int }

type counter = {
  c_name : string;
  c_key : counter_shard Domain.DLS.key;
  c_shards : counter_shard list Atomic.t;
}

let make_counter name =
  let shards = Atomic.make [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let s = { c_domain = (Domain.self () :> int); c_count = 0 } in
        push_shard shards s;
        s)
  in
  { c_name = name; c_key = key; c_shards = shards }

let add c n =
  if !enabled_flag then begin
    let s = Domain.DLS.get c.c_key in
    s.c_count <- s.c_count + n
  end

let incr c = add c 1

let counter_value c =
  List.fold_left
    (fun acc s -> acc + s.c_count)
    0
    (by_domain (fun s -> s.c_domain) (Atomic.get c.c_shards))

(* --- gauges --- *)

type gauge = { g_name : string; g_value : float Atomic.t }

let make_gauge name = { g_name = name; g_value = Atomic.make 0.0 }
let set g v = if !enabled_flag then Atomic.set g.g_value v
let gauge_value g = Atomic.get g.g_value

(* --- histograms --- *)

let default_buckets =
  [| 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0; 3.0; 10.0 |]

type histo_shard = {
  h_domain : int;
  h_counts : int array;  (* per bucket, +inf overflow last *)
  mutable h_sum : float;
  mutable h_n : int;
}

type histogram = {
  h_name : string;
  h_buckets : float array;
  h_key : histo_shard Domain.DLS.key;
  h_shards : histo_shard list Atomic.t;
}

let make_histogram ?(buckets = default_buckets) name =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg
          (Printf.sprintf "Metrics.histogram %s: buckets must increase" name))
    buckets;
  let shards = Atomic.make [] in
  let n_counts = Array.length buckets + 1 in
  let key =
    Domain.DLS.new_key (fun () ->
        let s =
          {
            h_domain = (Domain.self () :> int);
            h_counts = Array.make n_counts 0;
            h_sum = 0.0;
            h_n = 0;
          }
        in
        push_shard shards s;
        s)
  in
  { h_name = name; h_buckets = Array.copy buckets; h_key = key; h_shards = shards }

let observe h v =
  if !enabled_flag then begin
    let s = Domain.DLS.get h.h_key in
    let buckets = h.h_buckets in
    let n = Array.length buckets in
    let i = ref 0 in
    while !i < n && v > buckets.(!i) do
      Stdlib.incr i
    done;
    s.h_counts.(!i) <- s.h_counts.(!i) + 1;
    s.h_sum <- s.h_sum +. v;
    s.h_n <- s.h_n + 1
  end

let histo_shards h = by_domain (fun s -> s.h_domain) (Atomic.get h.h_shards)

let histogram_counts h =
  let counts = Array.make (Array.length h.h_buckets + 1) 0 in
  List.iter
    (fun s ->
      Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) s.h_counts)
    (histo_shards h);
  counts

let histogram_count h =
  List.fold_left (fun acc s -> acc + s.h_n) 0 (histo_shards h)

let histogram_sum h =
  List.fold_left (fun acc s -> acc +. s.h_sum) 0.0 (histo_shards h)

(* --- registry --- *)

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 32
let registry_mu = Mutex.create ()

let valid_name name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let register name kind make =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: bad metric name %S" name);
  Mutex.lock registry_mu;
  let m =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
      let m = make () in
      Hashtbl.add registry name m;
      m
  in
  Mutex.unlock registry_mu;
  match kind m with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Metrics: %S already registered as another kind" name)

let counter name =
  register name (function C c -> Some c | _ -> None)
    (fun () -> C (make_counter name))

let gauge name =
  register name (function G g -> Some g | _ -> None)
    (fun () -> G (make_gauge name))

let histogram ?buckets name =
  register name (function H h -> Some h | _ -> None)
    (fun () -> H (make_histogram ?buckets name))

let reset () =
  Mutex.lock registry_mu;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c ->
        List.iter (fun s -> s.c_count <- 0) (Atomic.get c.c_shards)
      | G g -> Atomic.set g.g_value 0.0
      | H h ->
        List.iter
          (fun s ->
            Array.fill s.h_counts 0 (Array.length s.h_counts) 0;
            s.h_sum <- 0.0;
            s.h_n <- 0)
          (Atomic.get h.h_shards))
    registry;
  Mutex.unlock registry_mu

(* --- snapshot and export --- *)

type histo_value = {
  buckets : float array;
  counts : int array;
  sum : float;
  count : int;
}

type value = Counter of int | Gauge of float | Histogram of histo_value
type snapshot = (string * value) list

let snapshot () =
  Mutex.lock registry_mu;
  let entries = Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] in
  Mutex.unlock registry_mu;
  entries
  |> List.map (fun (name, m) ->
         ( name,
           match m with
           | C c -> Counter (counter_value c)
           | G g -> Gauge (gauge_value g)
           | H h ->
             Histogram
               {
                 buckets = Array.copy h.h_buckets;
                 counts = histogram_counts h;
                 sum = histogram_sum h;
                 count = histogram_count h;
               } ))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let to_json (snap : snapshot) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let section title filter render =
    let entries = List.filter_map filter snap in
    add "  \"%s\": {" title;
    List.iteri
      (fun i (name, v) ->
        add "%s\n    \"%s\": %s" (if i > 0 then "," else "") name (render v))
      entries;
    if entries <> [] then add "\n  ";
    add "}"
  in
  add "{\n";
  section "counters"
    (function n, Counter c -> Some (n, c) | _ -> None)
    string_of_int;
  add ",\n";
  section "gauges"
    (function n, Gauge g -> Some (n, g) | _ -> None)
    json_float;
  add ",\n";
  section "histograms"
    (function n, Histogram h -> Some (n, h) | _ -> None)
    (fun h ->
      let b = Buffer.create 128 in
      Buffer.add_string b
        (Printf.sprintf "{ \"count\": %d, \"sum\": %s, \"buckets\": [" h.count
           (json_float h.sum));
      Array.iteri
        (fun i c ->
          let le =
            if i < Array.length h.buckets then
              Printf.sprintf "%s" (json_float h.buckets.(i))
            else "\"+Inf\""
          in
          Buffer.add_string b
            (Printf.sprintf "%s{ \"le\": %s, \"count\": %d }"
               (if i > 0 then ", " else "")
               le c))
        h.counts;
      Buffer.add_string b "] }";
      Buffer.contents b);
  add "\n}\n";
  Buffer.contents buf

(* The same payload as [to_json], as a tree — the run ledger embeds the
   snapshot inside a larger document. *)
let to_value (snap : snapshot) =
  let counters =
    List.filter_map
      (function n, Counter c -> Some (n, Json.Int c) | _ -> None)
      snap
  in
  let gauges =
    List.filter_map
      (function n, Gauge g -> Some (n, Json.Float g) | _ -> None)
      snap
  in
  let histograms =
    List.filter_map
      (function
        | n, Histogram h ->
          let buckets =
            Array.to_list
              (Array.mapi
                 (fun i c ->
                   let le =
                     if i < Array.length h.buckets then
                       Json.Float h.buckets.(i)
                     else Json.Str "+Inf"
                   in
                   Json.Obj [ ("le", le); ("count", Json.Int c) ])
                 h.counts)
          in
          Some
            ( n,
              Json.Obj
                [
                  ("count", Json.Int h.count);
                  ("sum", Json.Float h.sum);
                  ("buckets", Json.List buckets);
                ] )
        | _ -> None)
      snap
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
    ]

let to_prometheus (snap : snapshot) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (name, v) ->
      match v with
      | Counter c ->
        add "# TYPE %s counter\n%s %d\n" name name c
      | Gauge g -> add "# TYPE %s gauge\n%s %s\n" name name (json_float g)
      | Histogram h ->
        add "# TYPE %s histogram\n" name;
        let cum = ref 0 in
        Array.iteri
          (fun i c ->
            cum := !cum + c;
            let le =
              if i < Array.length h.buckets then
                Printf.sprintf "%g" h.buckets.(i)
              else "+Inf"
            in
            add "%s_bucket{le=\"%s\"} %d\n" name le !cum)
          h.counts;
        add "%s_sum %s\n%s_count %d\n" name (json_float h.sum) name h.count)
    snap;
  Buffer.contents buf

let summary_line (snap : snapshot) =
  let parts =
    List.filter_map
      (function
        | name, Counter c when c > 0 -> Some (Printf.sprintf "%s=%d" name c)
        | _ -> None)
      snap
  in
  "metrics: "
  ^ (match parts with [] -> "(no nonzero counters)" | _ -> String.concat " " parts)

let write ~file =
  let snap = snapshot () in
  let text =
    if Filename.check_suffix file ".prom" || Filename.check_suffix file ".txt"
    then to_prometheus snap
    else to_json snap
  in
  let oc = open_out file in
  output_string oc text;
  close_out oc
