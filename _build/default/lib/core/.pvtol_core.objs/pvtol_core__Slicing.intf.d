lib/core/slicing.mli: Island Netlist Pvtol_netlist Pvtol_place Pvtol_timing Pvtol_variation
